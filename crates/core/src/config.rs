//! Engine configuration and its fluent builder.
//!
//! [`EngineConfig`] keeps public fields (struct-literal construction and
//! `..Default::default()` updates stay valid), but the preferred way to
//! assemble one is [`EngineConfig::builder()`] — twelve knobs are past the
//! point where positional literals read well.

use std::sync::Arc;

use oassis_obs::{null_sink, EventSink};
use oassis_sparql::MatchMode;
use oassis_vocab::Fact;

use crate::assignment::Assignment;
use crate::runtime::{Clock, SystemClock};

/// Engine-level configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// SPARQL matching mode for the WHERE clause.
    pub mode: MatchMode,
    /// Answers required before the aggregator decides (the paper uses 5).
    pub aggregator_sample: usize,
    /// Probability of a specialization question at a descend step.
    pub specialization_ratio: f64,
    /// Probability of a user-guided-pruning interaction per question.
    pub pruning_ratio: f64,
    /// RNG seed for question-type choices and scheduling.
    pub seed: u64,
    /// Safety cap on total questions.
    pub max_questions: usize,
    /// Record the per-question discovery curve.
    pub track_curve: bool,
    /// Universe for the "% classified" curve series.
    pub curve_universe: Option<Vec<Assignment>>,
    /// Ground-truth MSPs for target curves (synthetic runs).
    pub targets: Option<Vec<Assignment>>,
    /// Candidate facts for the `MORE` clause.
    pub more_domain: Vec<Fact>,
    /// Stop as soon as this many *valid* MSPs are confirmed (the paper's
    /// §8 top-k extension). `None` = mine to completion.
    pub top_k: Option<usize>,
    /// Use the index-backed inference layer ([`SpaceCache`](crate::SpaceCache)
    /// memoization, indexed border prefilter, tid-list member support).
    /// `false` runs the reference linear-scan paths — observable behavior is
    /// identical either way; only wall-clock differs. The `scale` benchmark
    /// flips this to measure the speedup.
    pub use_indexes: bool,
    /// Evaluate the WHERE clause through the query planner: compile to a
    /// logical plan, rewrite it (constraint pushdown into scans,
    /// taxonomy-aware path unfolding, empty-branch pruning, join
    /// reordering) and interpret the optimized plan. `false` runs the
    /// naive reference evaluator instead — answers are identical either
    /// way (the `planner` benchmark asserts it); only evaluation cost
    /// differs.
    pub use_query_planner: bool,
    /// Node capacity of the per-run [`SpaceCache`](crate::SpaceCache)
    /// arena. Past it the cache evicts least-recently-interned entries
    /// (counted on `space.cache.evicted`) instead of growing — relevant
    /// when a long-lived service multiplexes many sessions over shared
    /// memory. The default (2^16) is above the engine's own
    /// DAG-materialization cap, so a normal run never evicts.
    pub space_cache_capacity: usize,
    /// Instrumentation sink receiving the engine's event stream (see
    /// `docs/observability.md`). Defaults to the no-op [`null_sink`], whose
    /// `enabled() == false` lets hot paths skip event construction.
    pub sink: Arc<dyn EventSink>,
    /// Time source for the engine's own waits (the synchronous `Direct`
    /// crowd path's in-line answer delay). Defaults to the real
    /// [`SystemClock`]; the simulation harness injects a
    /// [`VirtualClock`](crate::VirtualClock) so sequential reference runs
    /// pay no wall-clock time either.
    pub clock: Arc<dyn Clock>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: MatchMode::Semantic,
            aggregator_sample: 5,
            specialization_ratio: 0.0,
            pruning_ratio: 0.0,
            seed: 0,
            max_questions: 1_000_000,
            track_curve: false,
            curve_universe: None,
            targets: None,
            more_domain: Vec::new(),
            top_k: None,
            use_indexes: true,
            use_query_planner: true,
            space_cache_capacity: 1 << 16,
            sink: null_sink(),
            clock: Arc::new(SystemClock::new()),
        }
    }
}

impl EngineConfig {
    /// Start a fluent builder from the defaults.
    ///
    /// ```
    /// use oassis_core::EngineConfig;
    ///
    /// let config = EngineConfig::builder()
    ///     .aggregator_sample(2)
    ///     .seed(42)
    ///     .top_k(3)
    ///     .build();
    /// assert_eq!(config.aggregator_sample, 2);
    /// assert_eq!(config.top_k, Some(3));
    /// ```
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
        }
    }
}

/// Fluent builder for [`EngineConfig`], created by
/// [`EngineConfig::builder()`]. Every setter overrides one default; `build`
/// returns the finished configuration.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// SPARQL matching mode for the WHERE clause.
    pub fn mode(mut self, mode: MatchMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Answers required before the aggregator decides.
    pub fn aggregator_sample(mut self, sample: usize) -> Self {
        self.config.aggregator_sample = sample;
        self
    }

    /// Probability of a specialization question at a descend step.
    pub fn specialization_ratio(mut self, ratio: f64) -> Self {
        self.config.specialization_ratio = ratio;
        self
    }

    /// Probability of a user-guided-pruning interaction per question.
    pub fn pruning_ratio(mut self, ratio: f64) -> Self {
        self.config.pruning_ratio = ratio;
        self
    }

    /// RNG seed for question-type choices and scheduling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Safety cap on total questions.
    pub fn max_questions(mut self, cap: usize) -> Self {
        self.config.max_questions = cap;
        self
    }

    /// Record the per-question discovery curve.
    pub fn track_curve(mut self, on: bool) -> Self {
        self.config.track_curve = on;
        self
    }

    /// Universe for the "% classified" curve series.
    pub fn curve_universe(mut self, universe: Vec<Assignment>) -> Self {
        self.config.curve_universe = Some(universe);
        self
    }

    /// Ground-truth MSPs for target curves (synthetic runs).
    pub fn targets(mut self, targets: Vec<Assignment>) -> Self {
        self.config.targets = Some(targets);
        self
    }

    /// Candidate facts for the `MORE` clause.
    pub fn more_domain(mut self, domain: Vec<Fact>) -> Self {
        self.config.more_domain = domain;
        self
    }

    /// Stop after this many valid MSPs are confirmed.
    pub fn top_k(mut self, k: usize) -> Self {
        self.config.top_k = Some(k);
        self
    }

    /// Toggle the index-backed inference layer (default `true`).
    pub fn use_indexes(mut self, on: bool) -> Self {
        self.config.use_indexes = on;
        self
    }

    /// Toggle the WHERE-clause query planner (default `true`; `false`
    /// evaluates via the naive reference evaluator).
    pub fn use_query_planner(mut self, on: bool) -> Self {
        self.config.use_query_planner = on;
        self
    }

    /// Node capacity of the run's `SpaceCache` arena (values below 1 are
    /// clamped to 1; default `1 << 16`).
    pub fn space_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.space_cache_capacity = capacity.max(1);
        self
    }

    /// Instrumentation sink receiving the engine's event stream.
    pub fn sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.config.sink = sink;
        self
    }

    /// Time source for the engine's own waits (default: [`SystemClock`]).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.config.clock = clock;
        self
    }

    /// Finish, yielding the configuration.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_default_impl() {
        let built = EngineConfig::builder().build();
        let def = EngineConfig::default();
        assert_eq!(built.mode, def.mode);
        assert_eq!(built.aggregator_sample, def.aggregator_sample);
        assert_eq!(built.specialization_ratio, def.specialization_ratio);
        assert_eq!(built.pruning_ratio, def.pruning_ratio);
        assert_eq!(built.seed, def.seed);
        assert_eq!(built.max_questions, def.max_questions);
        assert_eq!(built.track_curve, def.track_curve);
        assert_eq!(built.curve_universe, def.curve_universe);
        assert_eq!(built.targets, def.targets);
        assert_eq!(built.more_domain, def.more_domain);
        assert_eq!(built.top_k, def.top_k);
        assert!(built.use_indexes, "indexes are on by default");
        assert!(built.use_query_planner, "planner is on by default");
        assert_eq!(built.use_query_planner, def.use_query_planner);
        assert_eq!(built.space_cache_capacity, 1 << 16);
        assert_eq!(built.space_cache_capacity, def.space_cache_capacity);
    }

    #[test]
    fn use_indexes_toggle_sticks() {
        let config = EngineConfig::builder().use_indexes(false).build();
        assert!(!config.use_indexes);
    }

    #[test]
    fn use_query_planner_toggle_sticks() {
        let config = EngineConfig::builder().use_query_planner(false).build();
        assert!(!config.use_query_planner);
    }

    #[test]
    fn every_setter_sticks() {
        let config = EngineConfig::builder()
            .aggregator_sample(1)
            .specialization_ratio(0.25)
            .pruning_ratio(0.5)
            .seed(7)
            .max_questions(99)
            .track_curve(true)
            .curve_universe(Vec::new())
            .targets(Vec::new())
            .more_domain(Vec::new())
            .top_k(2)
            .space_cache_capacity(1024)
            .build();
        assert_eq!(config.aggregator_sample, 1);
        assert_eq!(config.specialization_ratio, 0.25);
        assert_eq!(config.pruning_ratio, 0.5);
        assert_eq!(config.seed, 7);
        assert_eq!(config.max_questions, 99);
        assert!(config.track_curve);
        assert_eq!(config.curve_universe, Some(Vec::new()));
        assert_eq!(config.targets, Some(Vec::new()));
        assert_eq!(config.top_k, Some(2));
        assert_eq!(config.space_cache_capacity, 1024);
    }

    #[test]
    fn space_cache_capacity_clamps_to_one() {
        let config = EngineConfig::builder().space_cache_capacity(0).build();
        assert_eq!(config.space_cache_capacity, 1);
    }

    #[test]
    fn literal_update_syntax_still_works() {
        let config = EngineConfig {
            aggregator_sample: 3,
            ..EngineConfig::default()
        };
        assert_eq!(config.aggregator_sample, 3);
    }
}
