//! Execution statistics and the per-question discovery curve.
//!
//! The paper's evaluation reports, per query execution:
//!
//! * `#questions` — total questions posed, including repetitions across
//!   members (user effort, Figures 4a–4c),
//! * unique questions (crowd complexity, Propositions 4.7/4.8),
//! * the answer-type mix (concrete / specialization / "none of these" /
//!   pruning, Section 6.3),
//! * the *pace of data collection* (Figures 4d–4f, 5): after every question,
//!   how many MSPs / valid MSPs were discovered and how many of the DAG's
//!   assignments were classified.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use oassis_obs::{names, null_sink, Event, EventKind, EventSink};
use oassis_vocab::Vocabulary;

use crate::assignment::Assignment;
use crate::border::{ClassificationState, Status};

/// The kind of crowd interaction a question represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuestionKind {
    /// A concrete "how often ...?" question.
    Concrete,
    /// A specialization ("what type of ...?") question that got an answer.
    Specialization,
    /// A specialization question answered "none of these".
    NoneOfThese,
    /// A user-guided pruning interaction.
    Pruning,
}

impl QuestionKind {
    /// The label this kind carries on `engine.question.asked` events.
    pub fn label(self) -> &'static str {
        match self {
            QuestionKind::Concrete => "concrete",
            QuestionKind::Specialization => "specialization",
            QuestionKind::NoneOfThese => "none_of_these",
            QuestionKind::Pruning => "pruning",
        }
    }
}

/// One point of the discovery curve, captured after a question.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscoveryPoint {
    /// Questions asked so far (including this one).
    pub questions: usize,
    /// MSPs confirmed so far.
    pub msps: usize,
    /// Valid MSPs confirmed so far.
    pub valid_msps: usize,
    /// Target (planted) MSPs discovered so far, when a target set is known.
    pub targets_found: usize,
    /// Assignments of the tracked universe classified so far.
    pub classified: usize,
}

/// Statistics for one mining run.
#[derive(Debug, Clone, Default)]
pub struct ExecutionStats {
    /// Total questions including repetitions across members.
    pub total_questions: usize,
    /// Distinct fact-sets asked about.
    pub unique_questions: usize,
    /// Concrete questions asked.
    pub concrete: usize,
    /// Specialization questions answered with a choice.
    pub specialization: usize,
    /// Specialization questions answered "none of these".
    pub none_of_these: usize,
    /// User-guided pruning interactions.
    pub pruning: usize,
    /// Question index at which each MSP was confirmed.
    pub msp_events: Vec<usize>,
    /// Question index at which each *valid* MSP was confirmed.
    pub valid_msp_events: Vec<usize>,
    /// The discovery curve (one point per question when tracking is on).
    pub curve: Vec<DiscoveryPoint>,
    /// Distinct assignment nodes materialized by the lazy generator.
    pub nodes_generated: usize,
}

impl ExecutionStats {
    /// Fold one instrumentation event into the statistics.
    ///
    /// This is the single bookkeeping path: [`Recorder`] feeds every event
    /// it emits through here, and [`RecorderSink`] rebuilds the same
    /// numbers from a detached event stream — the counters are *derived
    /// from* the events, not tracked in parallel. Events outside the
    /// recorder's taxonomy (spans, crowd/sparql metrics) are ignored.
    pub fn apply(&mut self, event: &Event<'_>) {
        let n = match event.kind {
            EventKind::Counter(n) => n as usize,
            _ => return,
        };
        match event.name {
            names::QUESTION_ASKED => {
                self.total_questions += n;
                match event.label {
                    Some("concrete") => self.concrete += n,
                    Some("specialization") => self.specialization += n,
                    Some("none_of_these") => self.none_of_these += n,
                    Some("pruning") => self.pruning += n,
                    _ => {}
                }
            }
            names::QUESTION_UNIQUE => self.unique_questions += n,
            names::MSP_CONFIRMED => {
                for _ in 0..n {
                    self.msp_events.push(self.total_questions);
                    if event.label == Some("valid") {
                        self.valid_msp_events.push(self.total_questions);
                    }
                }
            }
            names::DAG_NODES_GENERATED => self.nodes_generated += n,
            _ => {}
        }
    }

    /// Questions needed to reach `fraction` (0..=1) of the final MSP count;
    /// `None` if no MSP was found.
    pub fn questions_to_msp_fraction(&self, fraction: f64) -> Option<usize> {
        questions_to_fraction(&self.msp_events, fraction)
    }

    /// Questions needed to reach `fraction` of the final valid-MSP count.
    pub fn questions_to_valid_msp_fraction(&self, fraction: f64) -> Option<usize> {
        questions_to_fraction(&self.valid_msp_events, fraction)
    }

    /// Questions needed to discover `fraction` of the *target* MSPs (planted
    /// ground truth), read off the curve.
    pub fn questions_to_target_fraction(
        &self,
        fraction: f64,
        total_targets: usize,
    ) -> Option<usize> {
        if total_targets == 0 {
            return None;
        }
        let needed = (fraction * total_targets as f64).ceil() as usize;
        self.curve
            .iter()
            .find(|p| p.targets_found >= needed)
            .map(|p| p.questions)
    }
}

fn questions_to_fraction(events: &[usize], fraction: f64) -> Option<usize> {
    if events.is_empty() {
        return None;
    }
    let needed = ((fraction * events.len() as f64).ceil() as usize).max(1);
    events.get(needed - 1).copied()
}

/// Live recorder used by the miners: counts questions, tracks borders over a
/// fixed universe (for the "% classified" series) and a target MSP set (for
/// the synthetic-experiment curves).
///
/// Every counter in [`Recorder::stats`] is derived from instrumentation
/// events: the recorder emits an [`Event`] per interaction, folds it into
/// its own stats via [`ExecutionStats::apply`], and forwards it to the
/// attached [`EventSink`] (the [`null_sink`] unless [`Recorder::with_sink`]
/// was called).
#[derive(Debug)]
pub struct Recorder {
    /// The statistics being accumulated.
    pub stats: ExecutionStats,
    asked: HashSet<oassis_vocab::FactSet>,
    /// Universe whose classification progress is tracked (optional).
    universe: Vec<Assignment>,
    universe_classified: Vec<bool>,
    classified_count: usize,
    /// Ground-truth MSPs to measure discovery against (optional).
    targets: Vec<Assignment>,
    targets_found: Vec<bool>,
    targets_found_count: usize,
    track_curve: bool,
    sink: Arc<dyn EventSink>,
    sink_enabled: bool,
    algo: Option<String>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            stats: ExecutionStats::default(),
            asked: HashSet::new(),
            universe: Vec::new(),
            universe_classified: Vec::new(),
            classified_count: 0,
            targets: Vec::new(),
            targets_found: Vec::new(),
            targets_found_count: 0,
            track_curve: false,
            sink: null_sink(),
            sink_enabled: false,
            algo: None,
        }
    }
}

impl Recorder {
    /// A recorder that only counts questions (no curve).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward every emitted event to `sink` as well.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink_enabled = sink.enabled();
        self.sink = sink;
        self
    }

    /// Label questions with the mining algorithm that asked them, making
    /// per-algorithm question counts (`algo.questions`) comparable across
    /// the vertical/horizontal/naive/multi-user implementations. Service
    /// sessions append their session id (`multiuser.s3`), so one shared
    /// sink can attribute questions per session.
    pub fn with_algo(mut self, algo: impl Into<String>) -> Self {
        self.algo = Some(algo.into());
        self
    }

    /// The attached sink handle.
    pub fn sink(&self) -> &Arc<dyn EventSink> {
        &self.sink
    }

    /// Cached `sink().enabled()` — lets hot paths skip event construction.
    pub fn sink_enabled(&self) -> bool {
        self.sink_enabled
    }

    /// Fold `event` into the stats and forward it to the sink.
    fn record(&mut self, event: &Event<'_>) {
        self.stats.apply(event);
        if self.sink_enabled {
            self.sink.emit(event);
        }
    }

    /// Track a per-question discovery curve.
    pub fn with_curve(mut self) -> Self {
        self.track_curve = true;
        self
    }

    /// Track classification progress over `universe`.
    pub fn with_universe(mut self, universe: Vec<Assignment>) -> Self {
        self.universe_classified = vec![false; universe.len()];
        self.universe = universe;
        self
    }

    /// Track discovery of the ground-truth MSP set `targets`.
    pub fn with_targets(mut self, targets: Vec<Assignment>) -> Self {
        self.targets_found = vec![false; targets.len()];
        self.targets = targets;
        self
    }

    /// Number of tracked targets.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Record one question of `kind` about `fs`.
    pub fn on_question(&mut self, kind: QuestionKind, fs: &oassis_vocab::FactSet) {
        self.record(&Event::counter(names::QUESTION_ASKED, 1).with_label(kind.label()));
        if self.sink_enabled {
            if let Some(algo) = &self.algo {
                self.sink
                    .emit(&Event::counter(names::ALGO_QUESTIONS, 1).with_label(algo));
            }
        }
        if self.asked.insert(fs.clone()) {
            self.record(&Event::counter(names::QUESTION_UNIQUE, 1));
        }
    }

    /// Record `n` assignment-DAG nodes materialized by the lazy generator.
    pub fn on_nodes_generated(&mut self, n: usize) {
        if n > 0 {
            self.record(&Event::counter(names::DAG_NODES_GENERATED, n as u64));
        }
    }

    /// Update universe/target progress after the classification state
    /// changed, then (if enabled) append a curve point.
    pub fn on_state_change(&mut self, state: &ClassificationState, vocab: &Vocabulary) {
        if !self.universe.is_empty() {
            for (i, a) in self.universe.iter().enumerate() {
                if !self.universe_classified[i] && state.status(a, vocab) != Status::Unclassified {
                    self.universe_classified[i] = true;
                    self.classified_count += 1;
                }
            }
        }
        if !self.targets.is_empty() {
            for (i, t) in self.targets.iter().enumerate() {
                if !self.targets_found[i] && state.status(t, vocab) == Status::Significant {
                    self.targets_found[i] = true;
                    self.targets_found_count += 1;
                }
            }
        }
        if self.track_curve {
            self.stats.curve.push(DiscoveryPoint {
                questions: self.stats.total_questions,
                msps: self.stats.msp_events.len(),
                valid_msps: self.stats.valid_msp_events.len(),
                targets_found: self.targets_found_count,
                classified: self.classified_count,
            });
        }
    }

    /// Record a confirmed MSP.
    pub fn on_msp(&mut self, valid: bool) {
        let label = if valid { "valid" } else { "invalid" };
        self.record(&Event::counter(names::MSP_CONFIRMED, 1).with_label(label));
        if self.track_curve {
            if let Some(last) = self.stats.curve.last_mut() {
                last.msps = self.stats.msp_events.len();
                last.valid_msps = self.stats.valid_msp_events.len();
            }
        }
    }

    /// Assignments of the universe classified so far.
    pub fn classified_count(&self) -> usize {
        self.classified_count
    }

    /// Targets found so far.
    pub fn targets_found_count(&self) -> usize {
        self.targets_found_count
    }
}

/// An [`EventSink`] that rebuilds [`ExecutionStats`] from the event stream
/// alone. Attach it (e.g. via `EngineConfig::sink`) to obtain the same
/// question/MSP/node counters a [`Recorder`] reports without access to the
/// recorder itself — demonstrating that the statistics are fully derived
/// from the emitted events.
#[derive(Debug, Default)]
pub struct RecorderSink {
    stats: Mutex<ExecutionStats>,
}

impl RecorderSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sink behind a shared handle.
    pub fn shared() -> Arc<RecorderSink> {
        Arc::new(Self::new())
    }

    /// Copy out the statistics accumulated so far.
    pub fn stats(&self) -> ExecutionStats {
        self.stats.lock().expect("recorder sink poisoned").clone()
    }
}

impl EventSink for RecorderSink {
    fn emit(&self, event: &Event<'_>) {
        self.stats
            .lock()
            .expect("recorder sink poisoned")
            .apply(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AValue;
    use oassis_store::ontology::figure1_ontology;
    use oassis_vocab::FactSet;

    fn a(vocab: &Vocabulary, y: &str) -> Assignment {
        Assignment::single_valued([AValue::Elem(vocab.element(y).unwrap())])
    }

    #[test]
    fn question_counting() {
        let mut r = Recorder::new();
        let fs = FactSet::new();
        r.on_question(QuestionKind::Concrete, &fs);
        r.on_question(QuestionKind::Concrete, &fs);
        r.on_question(QuestionKind::Pruning, &fs);
        assert_eq!(r.stats.total_questions, 3);
        assert_eq!(r.stats.unique_questions, 1);
        assert_eq!(r.stats.concrete, 2);
        assert_eq!(r.stats.pruning, 1);
    }

    #[test]
    fn universe_classification_progress() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let universe = vec![
            a(v, "Sport"),
            a(v, "Biking"),
            a(v, "Ball Game"),
            a(v, "Falafel"),
        ];
        let mut r = Recorder::new().with_curve().with_universe(universe);
        let mut st = ClassificationState::new();
        st.mark_insignificant(&a(v, "Sport"), v);
        r.on_state_change(&st, v);
        // Sport insig ⇒ Biking and Ball Game inferred insig too.
        assert_eq!(r.classified_count(), 3);
        assert_eq!(r.stats.curve.len(), 1);
        st.mark_significant(&a(v, "Falafel"), v);
        r.on_state_change(&st, v);
        assert_eq!(r.classified_count(), 4);
    }

    #[test]
    fn target_discovery_and_msp_events() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let mut r = Recorder::new()
            .with_curve()
            .with_targets(vec![a(v, "Biking")]);
        let fs = FactSet::new();
        let mut st = ClassificationState::new();
        r.on_question(QuestionKind::Concrete, &fs);
        st.mark_significant(&a(v, "Biking"), v);
        r.on_state_change(&st, v);
        assert_eq!(r.targets_found_count(), 1);
        r.on_msp(true);
        assert_eq!(r.stats.msp_events, vec![1]);
        assert_eq!(r.stats.valid_msp_events, vec![1]);
        assert_eq!(r.stats.curve.last().unwrap().msps, 1);
        assert_eq!(r.stats.curve.last().unwrap().targets_found, 1);
    }

    #[test]
    fn recorder_sink_rederives_stats_from_events() {
        let derived = RecorderSink::shared();
        let mut r = Recorder::new().with_sink(Arc::clone(&derived) as Arc<dyn EventSink>);
        let fs_a = FactSet::new();
        r.on_question(QuestionKind::Concrete, &fs_a);
        r.on_question(QuestionKind::Concrete, &fs_a);
        r.on_question(QuestionKind::Specialization, &fs_a);
        r.on_msp(true);
        r.on_question(QuestionKind::Pruning, &fs_a);
        r.on_msp(false);
        r.on_nodes_generated(7);

        let d = derived.stats();
        assert_eq!(d.total_questions, r.stats.total_questions);
        assert_eq!(d.unique_questions, r.stats.unique_questions);
        assert_eq!(d.concrete, r.stats.concrete);
        assert_eq!(d.specialization, r.stats.specialization);
        assert_eq!(d.pruning, r.stats.pruning);
        assert_eq!(d.msp_events, r.stats.msp_events);
        assert_eq!(d.valid_msp_events, r.stats.valid_msp_events);
        assert_eq!(d.nodes_generated, 7);
        assert_eq!(d.msp_events, vec![3, 4]);
        assert_eq!(d.valid_msp_events, vec![3]);
    }

    #[test]
    fn fraction_queries() {
        let stats = ExecutionStats {
            msp_events: vec![10, 20, 30, 40],
            valid_msp_events: vec![20, 40],
            ..Default::default()
        };
        assert_eq!(stats.questions_to_msp_fraction(0.5), Some(20));
        assert_eq!(stats.questions_to_msp_fraction(1.0), Some(40));
        assert_eq!(stats.questions_to_msp_fraction(0.01), Some(10));
        assert_eq!(stats.questions_to_valid_msp_fraction(1.0), Some(40));
        assert_eq!(
            ExecutionStats::default().questions_to_msp_fraction(0.5),
            None
        );
    }

    #[test]
    fn target_fraction_reads_curve() {
        let stats = ExecutionStats {
            curve: vec![
                DiscoveryPoint {
                    questions: 5,
                    msps: 0,
                    valid_msps: 0,
                    targets_found: 1,
                    classified: 3,
                },
                DiscoveryPoint {
                    questions: 9,
                    msps: 1,
                    valid_msps: 1,
                    targets_found: 2,
                    classified: 6,
                },
            ],
            ..Default::default()
        };
        assert_eq!(stats.questions_to_target_fraction(0.5, 2), Some(5));
        assert_eq!(stats.questions_to_target_fraction(1.0, 2), Some(9));
        assert_eq!(stats.questions_to_target_fraction(1.0, 3), None);
        assert_eq!(stats.questions_to_target_fraction(0.5, 0), None);
    }
}
