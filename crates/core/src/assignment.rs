//! Assignments with multiplicities and their partial order (Definition 4.1).
//!
//! An [`Assignment`] maps each `SATISFYING` variable to a *set* of values —
//! kept as a canonical **antichain of most-specific values** (a value implied
//! by another value of the same set is semantically redundant: the fact-sets
//! they instantiate have identical support) — plus a set of concrete `MORE`
//! facts.
//!
//! The order follows the paper: `φ ≤ φ'` iff for every variable `x` and
//! every value `v ∈ φ(x)` there is `v' ∈ φ'(x)` with `v ≤ v'`, and
//! additionally every MORE fact of `φ` is implied by one of `φ'`.

use std::fmt;

use oassis_vocab::{Fact, Vocabulary};

use crate::value::AValue;

/// A (possibly multi-valued) assignment node of the mining DAG.
///
/// Variables are indexed densely `0..nvars` in the order fixed by the
/// [`AssignSpace`](crate::AssignSpace); an empty value set means the
/// variable is unbound (multiplicity 0 — the meta-facts using it vanish).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Assignment {
    sets: Vec<Vec<AValue>>,
    more: Vec<Fact>,
}

impl Assignment {
    /// The all-empty assignment over `nvars` variables.
    pub fn empty(nvars: usize) -> Self {
        Assignment {
            sets: vec![Vec::new(); nvars],
            more: Vec::new(),
        }
    }

    /// Build a single-valued assignment from one value per variable.
    pub fn single_valued<I: IntoIterator<Item = AValue>>(values: I) -> Self {
        Assignment {
            sets: values.into_iter().map(|v| vec![v]).collect(),
            more: Vec::new(),
        }
    }

    /// Build from per-variable value sets, canonicalizing each to the
    /// antichain of most-specific values.
    pub fn from_sets(sets: Vec<Vec<AValue>>, vocab: &Vocabulary) -> Self {
        Assignment {
            sets: sets
                .into_iter()
                .map(|s| canonical_antichain(s, vocab))
                .collect(),
            more: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.sets.len()
    }

    /// The value set of variable `x`.
    pub fn values(&self, x: usize) -> &[AValue] {
        &self.sets[x]
    }

    /// The single value of `x`, if it has exactly one.
    pub fn single(&self, x: usize) -> Option<AValue> {
        match self.sets[x].as_slice() {
            [v] => Some(*v),
            _ => None,
        }
    }

    /// The MORE facts.
    pub fn more_facts(&self) -> &[Fact] {
        &self.more
    }

    /// Replace variable `x`'s value set (canonicalized). Returns a new node.
    pub fn with_values(&self, x: usize, values: Vec<AValue>, vocab: &Vocabulary) -> Self {
        let mut sets = self.sets.clone();
        sets[x] = canonical_antichain(values, vocab);
        Assignment {
            sets,
            more: self.more.clone(),
        }
    }

    /// Add a MORE fact. Returns a new node (facts kept sorted + deduped).
    pub fn with_more_fact(&self, fact: Fact) -> Self {
        let mut more = self.more.clone();
        if let Err(pos) = more.binary_search(&fact) {
            more.insert(pos, fact);
        }
        Assignment {
            sets: self.sets.clone(),
            more,
        }
    }

    /// Remove the MORE fact at index `i`. Returns a new node.
    pub fn without_more_fact(&self, i: usize) -> Self {
        let mut more = self.more.clone();
        more.remove(i);
        Assignment {
            sets: self.sets.clone(),
            more,
        }
    }

    /// Total number of values across variables plus MORE facts (a size
    /// measure used by generators and stats).
    pub fn weight(&self) -> usize {
        self.sets.iter().map(Vec::len).sum::<usize>() + self.more.len()
    }

    /// Whether every variable has exactly one value and there are no MORE
    /// facts (a "multiplicity-free" node).
    pub fn is_single_valued(&self) -> bool {
        self.more.is_empty() && self.sets.iter().all(|s| s.len() == 1)
    }

    /// The partial order of Definition 4.1 extended with MORE facts.
    pub fn leq(&self, other: &Assignment, vocab: &Vocabulary) -> bool {
        debug_assert_eq!(self.nvars(), other.nvars());
        let vars_ok = self
            .sets
            .iter()
            .zip(&other.sets)
            .all(|(a, b)| a.iter().all(|v| b.iter().any(|v2| v.leq(v2, vocab))));
        vars_ok
            && self
                .more
                .iter()
                .all(|f| other.more.iter().any(|g| vocab.fact_leq(f, g)))
    }

    /// Strict order.
    pub fn lt(&self, other: &Assignment, vocab: &Vocabulary) -> bool {
        self != other && self.leq(other, vocab)
    }

    /// Render with names, e.g. `{x: Central Park, y: {Biking, Ball Game}}`.
    pub fn display(&self, names: &[String], vocab: &Vocabulary) -> String {
        let mut parts = Vec::new();
        for (i, set) in self.sets.iter().enumerate() {
            let vals: Vec<&str> = set.iter().map(|v| v.name(vocab)).collect();
            let rendered = match vals.as_slice() {
                [] => "∅".to_owned(),
                [v] => (*v).to_owned(),
                many => format!("{{{}}}", many.join(", ")),
            };
            parts.push(format!("{}: {}", names.get(i).map_or("?", |s| s), rendered));
        }
        for f in &self.more {
            parts.push(format!("more: {}", vocab.fact_to_string(f)));
        }
        format!("{{{}}}", parts.join(", "))
    }
}

/// Canonicalize a value set: sort, dedup, and drop every value that is a
/// strict generalization of another member (keep most-specific values).
pub fn canonical_antichain(mut values: Vec<AValue>, vocab: &Vocabulary) -> Vec<AValue> {
    values.sort_unstable();
    values.dedup();
    let keep: Vec<AValue> = values
        .iter()
        .filter(|v| !values.iter().any(|w| *w != **v && v.leq(w, vocab)))
        .copied()
        .collect();
    keep
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, set) in self.sets.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            for (j, v) in set.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
        }
        if !self.more.is_empty() {
            write!(f, " +{} more", self.more.len())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_store::ontology::figure1_ontology;

    fn v(name: &str) -> (oassis_vocab::Vocabulary, AValue) {
        let o = figure1_ontology();
        let vocab = o.vocabulary().clone();
        let val = AValue::Elem(vocab.element(name).unwrap());
        (vocab, val)
    }

    fn elem(vocab: &oassis_vocab::Vocabulary, name: &str) -> AValue {
        AValue::Elem(vocab.element(name).unwrap())
    }

    #[test]
    fn canonical_antichain_keeps_most_specific() {
        let (vocab, _) = v("Sport");
        let sport = elem(&vocab, "Sport");
        let biking = elem(&vocab, "Biking");
        let ball = elem(&vocab, "Ball Game");
        // Sport is implied by both Biking and Ball Game → dropped.
        let set = canonical_antichain(vec![sport, biking, ball, biking], &vocab);
        assert_eq!(set.len(), 2);
        assert!(set.contains(&biking) && set.contains(&ball));
    }

    #[test]
    fn leq_single_valued_matches_pointwise_order() {
        let (vocab, sport) = v("Sport");
        let biking = elem(&vocab, "Biking");
        let cp = elem(&vocab, "Central Park");
        let a = Assignment::single_valued([cp, sport]);
        let b = Assignment::single_valued([cp, biking]);
        assert!(a.leq(&b, &vocab));
        assert!(!b.leq(&a, &vocab));
        assert!(a.leq(&a, &vocab));
    }

    #[test]
    fn leq_with_sets_fig3_node16_17_18() {
        // Node 16 = (CP, Biking), node 17 = (CP, Ball Game),
        // node 18 = (CP, {Biking, Ball Game}): both ≤ 18, incomparable.
        let (vocab, _) = v("Sport");
        let cp = elem(&vocab, "Central Park");
        let biking = elem(&vocab, "Biking");
        let ball = elem(&vocab, "Ball Game");
        let n16 = Assignment::single_valued([cp, biking]);
        let n17 = Assignment::single_valued([cp, ball]);
        let n18 = Assignment::from_sets(vec![vec![cp], vec![biking, ball]], &vocab);
        assert!(n16.leq(&n18, &vocab));
        assert!(n17.leq(&n18, &vocab));
        assert!(!n18.leq(&n16, &vocab));
        assert!(!n16.leq(&n17, &vocab) && !n17.leq(&n16, &vocab));
    }

    #[test]
    fn empty_set_is_most_general() {
        let (vocab, sport) = v("Sport");
        let cp = elem(&vocab, "Central Park");
        let empty_y = Assignment::from_sets(vec![vec![cp], vec![]], &vocab);
        let with_y = Assignment::single_valued([cp, sport]);
        assert!(empty_y.leq(&with_y, &vocab));
        assert!(!with_y.leq(&empty_y, &vocab));
    }

    #[test]
    fn more_facts_participate_in_the_order() {
        let (vocab, _) = v("Sport");
        let cp = elem(&vocab, "Central Park");
        let biking = elem(&vocab, "Biking");
        let rent = Fact::new(
            vocab.element("Rent Bikes").unwrap(),
            vocab.relation("doAt").unwrap(),
            vocab.element("Boathouse").unwrap(),
        );
        let plain = Assignment::single_valued([cp, biking]);
        let extended = plain.with_more_fact(rent);
        assert!(plain.leq(&extended, &vocab));
        assert!(!extended.leq(&plain, &vocab));
        assert_eq!(extended.more_facts(), &[rent]);
        assert_eq!(extended.without_more_fact(0), plain);
    }

    #[test]
    fn with_more_fact_dedups() {
        let (vocab, _) = v("Sport");
        let cp = elem(&vocab, "Central Park");
        let rent = Fact::new(
            vocab.element("Rent Bikes").unwrap(),
            vocab.relation("doAt").unwrap(),
            vocab.element("Boathouse").unwrap(),
        );
        let a = Assignment::single_valued([cp])
            .with_more_fact(rent)
            .with_more_fact(rent);
        assert_eq!(a.more_facts().len(), 1);
    }

    #[test]
    fn weight_and_single_valued() {
        let (vocab, _) = v("Sport");
        let cp = elem(&vocab, "Central Park");
        let biking = elem(&vocab, "Biking");
        let ball = elem(&vocab, "Ball Game");
        let a = Assignment::from_sets(vec![vec![cp], vec![biking, ball]], &vocab);
        assert_eq!(a.weight(), 3);
        assert!(!a.is_single_valued());
        assert!(Assignment::single_valued([cp, biking]).is_single_valued());
        assert!(!Assignment::empty(2).is_single_valued());
    }

    #[test]
    fn with_values_canonicalizes() {
        let (vocab, sport) = v("Sport");
        let cp = elem(&vocab, "Central Park");
        let biking = elem(&vocab, "Biking");
        let a = Assignment::single_valued([cp, sport]);
        let b = a.with_values(1, vec![sport, biking], &vocab);
        assert_eq!(b.values(1), &[biking], "Sport absorbed by Biking");
    }

    #[test]
    fn display_uses_names() {
        let (vocab, sport) = v("Sport");
        let cp = elem(&vocab, "Central Park");
        let a = Assignment::single_valued([cp, sport]);
        let s = a.display(&["x".into(), "y".into()], &vocab);
        assert!(
            s.contains("x: Central Park") && s.contains("y: Sport"),
            "{s}"
        );
    }
}
