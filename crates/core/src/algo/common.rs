//! Shared miner configuration, outcome type and the question-asking helper.

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use oassis_crowd::CrowdMember;
use oassis_obs::{null_sink, EventSink};
use oassis_vocab::FactSet;

use crate::assignment::Assignment;
use crate::border::{ClassificationState, Status};
use crate::space::{AssignSpace, SpaceCache};
use crate::stats::{ExecutionStats, QuestionKind, Recorder};
use crate::value::AValue;

/// Configuration shared by the single-user miners.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// The significance threshold θ (`WITH SUPPORT`).
    pub threshold: f64,
    /// Probability that a descend step uses a specialization question
    /// instead of one-by-one concrete questions (Figure 4f's ratio).
    pub specialization_ratio: f64,
    /// Probability that a question is accompanied by a user-guided-pruning
    /// interaction (Figure 4f's pruning-click ratio).
    pub pruning_ratio: f64,
    /// RNG seed for the question-type choices.
    pub seed: u64,
    /// Safety cap on total questions (the run stops when exceeded).
    pub max_questions: usize,
    /// Record a per-question discovery curve.
    pub track_curve: bool,
    /// Universe for the "% classified" series (e.g.
    /// [`AssignSpace::enumerate_single_valued`]).
    pub curve_universe: Option<Vec<Assignment>>,
    /// Ground-truth MSPs for target-discovery curves (synthetic runs).
    pub targets: Option<Vec<Assignment>>,
    /// Use the index-backed inference layer (memoized space derivations,
    /// indexed border). Observable behavior is identical either way; `false`
    /// is the un-indexed benchmark baseline.
    pub use_indexes: bool,
    /// Instrumentation sink; defaults to the no-op [`null_sink`]. Questions
    /// are additionally labeled with the algorithm's name on
    /// `algo.questions`, making the miners directly comparable.
    pub sink: Arc<dyn EventSink>,
}

impl MinerConfig {
    /// A plain configuration: concrete questions only, no curve.
    pub fn new(threshold: f64) -> Self {
        MinerConfig {
            threshold,
            specialization_ratio: 0.0,
            pruning_ratio: 0.0,
            seed: 0,
            max_questions: 1_000_000,
            track_curve: false,
            curve_universe: None,
            targets: None,
            use_indexes: true,
            sink: null_sink(),
        }
    }

    /// Attach an instrumentation sink.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }
}

/// The result of one mining run.
#[derive(Debug)]
pub struct MinerOutcome {
    /// All MSPs found (maximal significant assignments, valid or not).
    pub msps: Vec<Assignment>,
    /// The subset of MSPs valid w.r.t. the query.
    pub valid_msps: Vec<Assignment>,
    /// Question counts, answer-type mix, discovery curve.
    pub stats: ExecutionStats,
    /// The final classification knowledge.
    pub state: ClassificationState,
}

/// The §6.3 baseline cost: ask `sample_size` questions for every valid
/// assignment, with no traversal order or inference.
pub fn baseline_question_count(valid_assignments: usize, sample_size: usize) -> usize {
    valid_assignments * sample_size
}

/// Result of attempting a specialization question.
pub(crate) enum SpecOutcome {
    /// The ratio gate chose a concrete question instead.
    NotUsed,
    /// The member picked candidate `idx`; `significant` is the verdict.
    Chosen {
        /// Index into the candidate slice.
        idx: usize,
        /// Whether the reported support met the threshold.
        significant: bool,
    },
    /// "None of these": all candidates were marked insignificant.
    NoneOfThese,
}

/// Wraps one member with the classification state, statistics recorder and
/// the question-type policy. All miners ask through this.
pub(crate) struct Asker<'a> {
    pub space: &'a AssignSpace,
    pub member: &'a mut dyn CrowdMember,
    pub state: ClassificationState,
    /// Memoized space derivations; pass-through when indexes are off.
    pub cache: SpaceCache,
    pub recorder: Recorder,
    pub threshold: f64,
    spec_ratio: f64,
    prune_ratio: f64,
    max_questions: usize,
    rng: SmallRng,
    generated: HashSet<Assignment>,
}

impl<'a> Asker<'a> {
    pub fn new(
        space: &'a AssignSpace,
        member: &'a mut dyn CrowdMember,
        cfg: &MinerConfig,
        algo: &'static str,
    ) -> Self {
        let mut recorder = Recorder::new()
            .with_sink(Arc::clone(&cfg.sink))
            .with_algo(algo);
        if cfg.track_curve {
            recorder = recorder.with_curve();
        }
        if let Some(u) = &cfg.curve_universe {
            recorder = recorder.with_universe(u.clone());
        }
        if let Some(t) = &cfg.targets {
            recorder = recorder.with_targets(t.clone());
        }
        let (state, cache) = if cfg.use_indexes {
            (
                ClassificationState::new(),
                SpaceCache::with_sink(Arc::clone(&cfg.sink)),
            )
        } else {
            (ClassificationState::unindexed(), SpaceCache::disabled())
        };
        Asker {
            space,
            member,
            state,
            cache,
            recorder,
            threshold: cfg.threshold,
            spec_ratio: cfg.specialization_ratio,
            prune_ratio: cfg.pruning_ratio,
            max_questions: cfg.max_questions,
            rng: SmallRng::seed_from_u64(cfg.seed),
            generated: HashSet::new(),
        }
    }

    /// Whether another question may be asked.
    pub fn budget_left(&self) -> bool {
        self.recorder.stats.total_questions < self.max_questions && self.member.willing()
    }

    /// Count the lazily generated DAG nodes in `succs` not seen before.
    pub fn on_nodes_generated(&mut self, succs: &[Assignment]) {
        let fresh = succs
            .iter()
            .filter(|s| self.generated.insert((*s).clone()))
            .count();
        self.recorder.on_nodes_generated(fresh);
    }

    /// Ask a concrete question about `phi` (with an optional pruning
    /// interaction first). Returns whether `phi` is significant.
    pub fn ask(&mut self, phi: &Assignment) -> bool {
        let vocab = self.space.ontology().vocabulary();
        let fs = self.cache.instantiate(self.space, phi);

        // User-guided pruning (Section 6.2): while viewing the question, the
        // member may flag a value as irrelevant with a single click — that
        // click *is* the answer (support 0 for every assignment involving
        // the value or a specialization), at the cost of one question.
        if self.prune_ratio > 0.0 && self.rng.random::<f64>() < self.prune_ratio {
            let irrelevant = self.member.irrelevant_elements(&fs);
            if !irrelevant.is_empty() {
                self.recorder.on_question(QuestionKind::Pruning, &fs);
                for e in irrelevant {
                    self.state.mark_pruned(AValue::Elem(e));
                }
                self.recorder.on_state_change(&self.state, vocab);
                if self.state.status(phi, vocab) == Status::Insignificant {
                    return false;
                }
            }
        }

        self.recorder.on_question(QuestionKind::Concrete, &fs);
        let s = self.member.ask_concrete(&fs);
        let significant = s >= self.threshold;
        if significant {
            self.state.mark_significant(phi, vocab);
        } else {
            self.state.mark_insignificant(phi, vocab);
        }
        self.recorder.on_state_change(&self.state, vocab);
        significant
    }

    /// Possibly ask a specialization question about `phi`'s unclassified
    /// successors `candidates`.
    pub fn try_specialize(&mut self, phi: &Assignment, candidates: &[Assignment]) -> SpecOutcome {
        if candidates.is_empty()
            || self.spec_ratio <= 0.0
            || self.rng.random::<f64>() >= self.spec_ratio
        {
            return SpecOutcome::NotUsed;
        }
        let vocab = self.space.ontology().vocabulary();
        let base = self.cache.instantiate(self.space, phi);
        let cand_fs: Vec<FactSet> = candidates
            .iter()
            .map(|c| FactSet::clone(&self.cache.instantiate(self.space, c)))
            .collect();
        match self.member.ask_specialization(&base, &cand_fs) {
            Some((idx, s)) => {
                self.recorder
                    .on_question(QuestionKind::Specialization, &base);
                let significant = s >= self.threshold;
                if significant {
                    self.state.mark_significant(&candidates[idx], vocab);
                } else {
                    self.state.mark_insignificant(&candidates[idx], vocab);
                }
                self.recorder.on_state_change(&self.state, vocab);
                SpecOutcome::Chosen { idx, significant }
            }
            None => {
                // "None of these": support 0 for every candidate at once.
                self.recorder.on_question(QuestionKind::NoneOfThese, &base);
                for c in candidates {
                    self.state.mark_insignificant(c, vocab);
                }
                self.recorder.on_state_change(&self.state, vocab);
                SpecOutcome::NoneOfThese
            }
        }
    }

    /// Extract the MSPs from the final state: the positive border, split by
    /// validity.
    pub fn finish(self) -> MinerOutcome {
        let msps: Vec<Assignment> = self.state.significant_border().to_vec();
        let valid_msps: Vec<Assignment> = msps
            .iter()
            .filter(|m| self.cache.is_valid(self.space, m))
            .cloned()
            .collect();
        MinerOutcome {
            msps,
            valid_msps,
            stats: self.recorder.stats,
            state: self.state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_cost() {
        assert_eq!(baseline_question_count(100, 5), 500);
        assert_eq!(baseline_question_count(0, 5), 0);
    }

    #[test]
    fn default_config() {
        let c = MinerConfig::new(0.3);
        assert_eq!(c.threshold, 0.3);
        assert_eq!(c.specialization_ratio, 0.0);
        assert!(!c.track_curve);
    }
}
