//! The mining algorithms: vertical (Algorithm 1), horizontal (Apriori-style)
//! and naive (random), plus the §6.3 baseline cost model.

mod common;
mod horizontal;
mod naive;
mod vertical;

pub use common::{baseline_question_count, MinerConfig, MinerOutcome};
pub use horizontal::HorizontalMiner;
pub use naive::NaiveMiner;
pub use vertical::VerticalMiner;
