//! The naive comparator (Section 6.4): repeatedly ask about a *random*
//! unclassified valid assignment, reusing the same inference scheme, until
//! every valid assignment is classified.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use oassis_crowd::CrowdMember;

use crate::algo::common::{Asker, MinerConfig, MinerOutcome};
use crate::assignment::Assignment;
use crate::border::Status;
use crate::space::AssignSpace;

/// The random-order miner.
#[derive(Debug, Clone, Default)]
pub struct NaiveMiner;

impl NaiveMiner {
    /// Classify all of `universe` (the valid assignments; for fairness the
    /// paper feeds it the same multiplicity nodes the vertical algorithm
    /// generated) by asking about random unclassified members.
    pub fn run(
        space: &AssignSpace,
        member: &mut dyn CrowdMember,
        config: &MinerConfig,
        universe: &[Assignment],
    ) -> MinerOutcome {
        let mut asker = Asker::new(space, member, config, "naive");
        let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(0x9e3779b9));
        let mut remaining: Vec<Assignment> = universe.to_vec();

        while asker.budget_left() && !remaining.is_empty() {
            let vocab = space.ontology().vocabulary();
            // Drop everything already classified by inference.
            remaining.retain(|a| asker.state.status(a, vocab) == Status::Unclassified);
            if remaining.is_empty() {
                break;
            }
            let i = rng.random_range(0..remaining.len());
            let phi = remaining.swap_remove(i);
            asker.ask(&phi);
        }
        asker.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::vertical::VerticalMiner;
    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::{DbMember, MemberId};
    use oassis_ql::parse_query;
    use oassis_sparql::MatchMode;
    use oassis_store::ontology::figure1_ontology;
    use std::sync::Arc;

    fn setup(threshold: f64) -> (AssignSpace, DbMember) {
        let o = Arc::new(figure1_ontology());
        let src = format!(
            r#"SELECT FACT-SETS
               WHERE
                 $w subClassOf* Attraction.
                 $x instanceOf $w.
                 $x inside NYC.
                 $y subClassOf* Activity
               SATISFYING
                 $y doAt $x
               WITH SUPPORT = {threshold}"#
        );
        let q = parse_query(&src, &o).unwrap();
        let space =
            AssignSpace::build(Arc::clone(&o), &q, MatchMode::Semantic, Vec::new()).unwrap();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, _) = table3_dbs(&vocab);
        let m = DbMember::new(MemberId(1), d1, vocab);
        (space, m)
    }

    #[test]
    fn naive_classifies_the_whole_universe() {
        let (space, mut m) = setup(0.3);
        let universe: Vec<Assignment> = space
            .enumerate_single_valued(100_000)
            .unwrap()
            .into_iter()
            .filter(|a| space.is_valid(a))
            .collect();
        let out = NaiveMiner::run(&space, &mut m, &MinerConfig::new(0.3), &universe);
        let vocab = space.ontology().vocabulary();
        for a in &universe {
            assert!(!out.state.is_unclassified(a, vocab));
        }
        assert!(out.stats.total_questions <= universe.len());
    }

    #[test]
    fn naive_significant_set_matches_vertical_on_valid_assignments() {
        let (space, mut m) = setup(0.3);
        let universe: Vec<Assignment> = space
            .enumerate_single_valued(100_000)
            .unwrap()
            .into_iter()
            .filter(|a| space.is_valid(a))
            .collect();
        let naive = NaiveMiner::run(&space, &mut m, &MinerConfig::new(0.3), &universe);

        let (space2, mut m2) = setup(0.3);
        let vertical = VerticalMiner::run(&space2, &mut m2, &MinerConfig::new(0.3));

        let vocab = space.ontology().vocabulary();
        for a in &universe {
            assert_eq!(
                naive.state.is_significant(a, vocab),
                vertical.state.is_significant(a, vocab),
                "disagreement on {a}"
            );
        }
    }

    #[test]
    fn different_seeds_change_question_order_not_results() {
        let (space, mut m) = setup(0.3);
        let universe: Vec<Assignment> = space
            .enumerate_single_valued(100_000)
            .unwrap()
            .into_iter()
            .filter(|a| space.is_valid(a))
            .collect();
        let out1 = NaiveMiner::run(
            &space,
            &mut m,
            &MinerConfig {
                seed: 1,
                ..MinerConfig::new(0.3)
            },
            &universe,
        );
        let (space2, mut m2) = setup(0.3);
        let out2 = NaiveMiner::run(
            &space2,
            &mut m2,
            &MinerConfig {
                seed: 2,
                ..MinerConfig::new(0.3)
            },
            &universe,
        );
        let vocab = space.ontology().vocabulary();
        for a in &universe {
            assert_eq!(
                out1.state.is_significant(a, vocab),
                out2.state.is_significant(a, vocab)
            );
        }
    }

    #[test]
    fn empty_universe_asks_nothing() {
        let (space, mut m) = setup(0.3);
        let out = NaiveMiner::run(&space, &mut m, &MinerConfig::new(0.3), &[]);
        assert_eq!(out.stats.total_questions, 0);
        assert!(out.msps.is_empty());
    }
}
