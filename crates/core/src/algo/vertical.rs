//! The vertical algorithm (Algorithm 1) for a single crowd member.
//!
//! Repeatedly: find a *minimal unclassified* assignment; if significant,
//! descend greedily through significant immediate successors until none is
//! left — that deepest assignment is an MSP. Every answer classifies whole
//! regions of the DAG through the order-based inference of Observation 4.4,
//! and the DAG itself is generated lazily (Section 5).

use std::collections::HashSet;

use oassis_crowd::CrowdMember;

use crate::algo::common::{Asker, MinerConfig, MinerOutcome, SpecOutcome};
use crate::assignment::Assignment;
use crate::border::Status;
use crate::space::AssignSpace;

/// The paper's top-down miner.
///
/// ```
/// use oassis_core::{AssignSpace, MinerConfig, VerticalMiner};
/// use oassis_crowd::transaction::table3_dbs;
/// use oassis_crowd::{DbMember, MemberId};
/// use oassis_ql::parse_query;
/// use oassis_sparql::MatchMode;
/// use oassis_store::ontology::figure1_ontology;
/// use std::sync::Arc;
///
/// let o = Arc::new(figure1_ontology());
/// let q = parse_query(
///     "SELECT FACT-SETS WHERE $y subClassOf* Activity \
///      SATISFYING $y doAt <Central Park> WITH SUPPORT = 0.3",
///     &o,
/// ).unwrap();
/// let space = AssignSpace::build(Arc::clone(&o), &q, MatchMode::Semantic, vec![]).unwrap();
/// let vocab = Arc::new(o.vocabulary().clone());
/// let (d1, _) = table3_dbs(&vocab);
/// let mut member = DbMember::new(MemberId(1), d1, vocab);
///
/// let out = VerticalMiner::run(&space, &mut member, &MinerConfig::new(0.3));
/// assert!(!out.msps.is_empty());
/// assert!(out.stats.total_questions > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VerticalMiner;

impl VerticalMiner {
    /// Run Algorithm 1 against one member.
    pub fn run(
        space: &AssignSpace,
        member: &mut dyn CrowdMember,
        config: &MinerConfig,
    ) -> MinerOutcome {
        let mut asker = Asker::new(space, member, config, "vertical");
        // Significant nodes whose entire successor region is known
        // classified; sound to cache because classification is monotone.
        let mut closed: HashSet<Assignment> = HashSet::new();

        while asker.budget_left() {
            let Some(mut phi) = find_minimal_unclassified(space, &asker, &mut closed) else {
                break;
            };
            if !asker.ask(&phi) {
                continue;
            }
            // Descend through significant successors.
            'descend: loop {
                if !asker.budget_left() {
                    break;
                }
                let vocab = space.ontology().vocabulary();
                let succs = asker.cache.successors(space, &phi);
                asker.on_nodes_generated(&succs);

                // Move freely into an already-known-significant successor:
                // no question needed, and it keeps us below the true MSP.
                if let Some(s) = succs
                    .iter()
                    .find(|s| asker.state.status(s, vocab) == Status::Significant)
                {
                    phi = s.clone();
                    continue;
                }
                let unclassified: Vec<Assignment> = succs
                    .iter()
                    .filter(|s| asker.state.status(s, vocab) == Status::Unclassified)
                    .cloned()
                    .collect();
                if unclassified.is_empty() {
                    break;
                }
                match asker.try_specialize(&phi, &unclassified) {
                    SpecOutcome::Chosen {
                        idx,
                        significant: true,
                    } => {
                        phi = unclassified[idx].clone();
                        continue 'descend;
                    }
                    SpecOutcome::Chosen { .. } => continue 'descend,
                    SpecOutcome::NoneOfThese => continue 'descend,
                    SpecOutcome::NotUsed => {}
                }
                let mut moved = false;
                for s in unclassified {
                    if !asker.budget_left() {
                        break;
                    }
                    if asker.ask(&s) {
                        phi = s;
                        moved = true;
                        break;
                    }
                }
                if !moved {
                    break;
                }
            }
            // φ has no significant successor: it is an MSP.
            let vocab = space.ontology().vocabulary();
            let no_sig_succ = asker
                .cache
                .successors(space, &phi)
                .iter()
                .all(|s| asker.state.status(s, vocab) != Status::Significant);
            if no_sig_succ {
                let valid = asker.cache.is_valid(space, &phi);
                asker.recorder.on_msp(valid);
            }
        }
        asker.finish()
    }
}

/// Find a minimal unclassified assignment of `𝒜`, or `None` when everything
/// is classified. Scans from the roots through the significant region,
/// caching fully-classified regions in `closed`.
fn find_minimal_unclassified(
    space: &AssignSpace,
    asker: &Asker<'_>,
    closed: &mut HashSet<Assignment>,
) -> Option<Assignment> {
    let vocab = space.ontology().vocabulary();
    for root in space.roots() {
        match asker.state.status(&root, vocab) {
            Status::Unclassified => return Some(minimalize(space, asker, root)),
            Status::Insignificant => {}
            Status::Significant => {
                if let Some(u) = scan(space, asker, closed, &root) {
                    return Some(minimalize(space, asker, u));
                }
            }
        }
    }
    None
}

/// DFS below a significant node; returns the first unclassified assignment,
/// marking fully-classified regions closed.
fn scan(
    space: &AssignSpace,
    asker: &Asker<'_>,
    closed: &mut HashSet<Assignment>,
    node: &Assignment,
) -> Option<Assignment> {
    if closed.contains(node) {
        return None;
    }
    let vocab = space.ontology().vocabulary();
    for s in asker.cache.successors(space, node).iter() {
        match asker.state.status(s, vocab) {
            Status::Unclassified => return Some(s.clone()),
            Status::Insignificant => {}
            Status::Significant => {
                if let Some(u) = scan(space, asker, closed, s) {
                    return Some(u);
                }
            }
        }
    }
    closed.insert(node.clone());
    None
}

/// Walk up to a minimal unclassified assignment (one with no unclassified
/// predecessor).
fn minimalize(space: &AssignSpace, asker: &Asker<'_>, mut phi: Assignment) -> Assignment {
    let vocab = space.ontology().vocabulary();
    'walk: loop {
        let preds = asker.cache.predecessors(space, &phi);
        let mut next = None;
        for p in preds.iter() {
            if asker.state.status(p, vocab) == Status::Unclassified {
                next = Some(p.clone());
                break;
            }
        }
        match next {
            Some(p) => {
                phi = p;
                continue 'walk;
            }
            None => return phi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AValue;
    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::{DbMember, MemberId};
    use oassis_ql::parse_query;
    use oassis_sparql::MatchMode;
    use oassis_store::ontology::figure1_ontology;
    use std::sync::Arc;

    const FIG3_QUERY: &str = r#"
        SELECT FACT-SETS
        WHERE
          $w subClassOf* Attraction.
          $x instanceOf $w.
          $x inside NYC.
          $x hasLabel "child-friendly".
          $y subClassOf* Activity
        SATISFYING
          $y+ doAt $x
        WITH SUPPORT = 0.3
    "#;

    fn setup(threshold: f64) -> (AssignSpace, DbMember, DbMember) {
        let o = Arc::new(figure1_ontology());
        let src = FIG3_QUERY.replace("0.3", &threshold.to_string());
        let q = parse_query(&src, &o).unwrap();
        let space =
            AssignSpace::build(Arc::clone(&o), &q, MatchMode::Semantic, Vec::new()).unwrap();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, d2) = table3_dbs(&vocab);
        let m1 = DbMember::new(MemberId(1), d1, Arc::clone(&vocab));
        let m2 = DbMember::new(MemberId(2), d2, vocab);
        (space, m1, m2)
    }

    fn assignment(space: &AssignSpace, y: &str, x: &str) -> Assignment {
        let v = space.ontology().vocabulary();
        Assignment::single_valued([
            AValue::Elem(v.element(y).unwrap()),
            AValue::Elem(v.element(x).unwrap()),
        ])
    }

    #[test]
    fn mines_u1_msps_at_threshold_0_3() {
        // u1's supports (Table 3): Biking@CP = 2/6 (T3, T4), Ball Game@CP =
        // 2/6 (T1, T4), Feed a monkey@Bronx Zoo = 4/6 (T2, T5, T6 + implied
        // by nothing else), Basketball/Baseball@CP = 1/6 < 0.3, and the
        // multiplicity-2 combination {Biking, Ball Game}@CP = 1/6 (only T4).
        let (space, mut m1, _) = setup(0.3);
        let out = VerticalMiner::run(&space, &mut m1, &MinerConfig::new(0.3));
        let monkey = assignment(&space, "Feed a monkey", "Bronx Zoo");
        assert!(out.msps.contains(&monkey), "msps: {:?}", out.msps);
        // Biking and Ball Game are separate MSPs (their combination is
        // below threshold, as are their specializations).
        let vocab = space.ontology().vocabulary();
        assert!(out
            .msps
            .contains(&assignment(&space, "Biking", "Central Park")));
        assert!(out
            .msps
            .contains(&assignment(&space, "Ball Game", "Central Park")));
        let combo = Assignment::from_sets(
            vec![
                vec![
                    AValue::Elem(vocab.element("Biking").unwrap()),
                    AValue::Elem(vocab.element("Ball Game").unwrap()),
                ],
                vec![AValue::Elem(vocab.element("Central Park").unwrap())],
            ],
            vocab,
        );
        assert!(
            out.state.is_insignificant(&combo, vocab),
            "the multiplicity-2 combination is below threshold for u1"
        );
        // Basketball/Baseball must NOT be significant.
        for name in ["Basketball", "Baseball"] {
            let a = assignment(&space, name, "Central Park");
            assert!(
                !out.state.is_significant(&a, vocab),
                "{name} should be insignificant"
            );
        }
        // Every reported MSP is significant and maximal.
        for m in &out.msps {
            assert!(out.state.is_significant(m, vocab));
            for s in space.successors(m) {
                assert!(
                    !out.state.is_significant(&s, vocab),
                    "{m} has sig successor {s}"
                );
            }
        }
    }

    #[test]
    fn everything_classified_on_completion() {
        let (space, mut m1, _) = setup(0.3);
        let out = VerticalMiner::run(&space, &mut m1, &MinerConfig::new(0.3));
        let vocab = space.ontology().vocabulary();
        for a in space.enumerate_single_valued(100_000).unwrap() {
            assert!(
                !out.state.is_unclassified(&a, vocab),
                "assignment {a} left unclassified"
            );
        }
    }

    #[test]
    fn high_threshold_yields_monkey_and_sport() {
        // At θ = 0.5, u1's significant maximal patterns are Feed a
        // monkey@Bronx Zoo (4/6) and Sport@Central Park (exactly 3/6, via
        // T1, T3, T4 — every specialization drops below).
        let (space, mut m1, _) = setup(0.5);
        let out = VerticalMiner::run(&space, &mut m1, &MinerConfig::new(0.5));
        let monkey = assignment(&space, "Feed a monkey", "Bronx Zoo");
        let sport = assignment(&space, "Sport", "Central Park");
        let mut msps = out.msps.clone();
        msps.sort();
        let mut expected = vec![monkey, sport];
        expected.sort();
        assert_eq!(msps, expected);
        assert_eq!(out.valid_msps.len(), 2);
    }

    #[test]
    fn threshold_one_yields_the_universal_pattern() {
        // Every one of u1's transactions implies `Activity doAt Outdoor`
        // (all six occasions are activities at outdoor attractions), and no
        // specialization holds in all of them.
        let (space, mut m1, _) = setup(1.0);
        let out = VerticalMiner::run(&space, &mut m1, &MinerConfig::new(1.0));
        assert_eq!(out.msps, vec![assignment(&space, "Activity", "Outdoor")]);
        assert!(out.stats.total_questions > 0);
    }

    #[test]
    fn specialization_questions_reduce_question_count() {
        let (space, mut plain, _) = setup(0.3);
        let plain_out = VerticalMiner::run(&space, &mut plain, &MinerConfig::new(0.3));

        let (space2, mut spec, _) = setup(0.3);
        let cfg = MinerConfig {
            specialization_ratio: 1.0,
            seed: 7,
            ..MinerConfig::new(0.3)
        };
        let spec_out = VerticalMiner::run(&space2, &mut spec, &cfg);
        assert_eq!(
            plain_out.msps.len(),
            spec_out.msps.len(),
            "same MSPs regardless of question mix"
        );
        assert!(spec_out.stats.specialization + spec_out.stats.none_of_these > 0);
        assert!(
            spec_out.stats.total_questions <= plain_out.stats.total_questions,
            "specialization saves questions: {} vs {}",
            spec_out.stats.total_questions,
            plain_out.stats.total_questions
        );
    }

    #[test]
    fn question_budget_is_respected() {
        let (space, mut m1, _) = setup(0.3);
        let cfg = MinerConfig {
            max_questions: 3,
            ..MinerConfig::new(0.3)
        };
        let out = VerticalMiner::run(&space, &mut m1, &cfg);
        assert!(out.stats.total_questions <= 3);
    }

    #[test]
    fn curve_is_recorded_when_enabled() {
        let (space, mut m1, _) = setup(0.3);
        let universe = space.enumerate_single_valued(100_000).unwrap();
        let n = universe.len();
        let cfg = MinerConfig {
            track_curve: true,
            curve_universe: Some(universe),
            ..MinerConfig::new(0.3)
        };
        let out = VerticalMiner::run(&space, &mut m1, &cfg);
        assert!(!out.stats.curve.is_empty());
        let last = out.stats.curve.last().unwrap();
        assert_eq!(
            last.classified, n,
            "run-to-completion classifies the whole universe"
        );
        assert_eq!(last.questions, out.stats.total_questions);
        // Curve is monotone.
        for w in out.stats.curve.windows(2) {
            assert!(w[0].questions <= w[1].questions);
            assert!(w[0].classified <= w[1].classified);
            assert!(w[0].msps <= w[1].msps);
        }
    }
}
