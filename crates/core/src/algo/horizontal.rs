//! The horizontal comparator (Section 6.4): an Apriori-inspired, level-wise
//! traversal. An assignment is asked about only after *all* of its immediate
//! predecessors are known significant; insignificant regions are pruned by
//! the same inference scheme the vertical algorithm uses.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use oassis_crowd::CrowdMember;

use crate::algo::common::{Asker, MinerConfig, MinerOutcome};
use crate::assignment::Assignment;
use crate::border::Status;
use crate::space::AssignSpace;
use crate::value::AValue;

/// The Apriori-style level-wise miner.
#[derive(Debug, Clone, Default)]
pub struct HorizontalMiner;

/// A rank strictly increasing along DAG edges: total taxonomy depth plus
/// the number of values and MORE facts. Predecessors always have a smaller
/// rank, so a min-heap processes them first.
fn rank(space: &AssignSpace, phi: &Assignment) -> usize {
    let vocab = space.ontology().vocabulary();
    let mut r = phi.more_facts().len();
    for x in 0..phi.nvars() {
        for v in phi.values(x) {
            r += 1;
            r += match v {
                AValue::Elem(e) => vocab.elements_order().depth(*e),
                AValue::Rel(rel) => vocab.relations_order().depth(*rel),
            };
        }
    }
    r
}

impl HorizontalMiner {
    /// Run the level-wise traversal against one member.
    pub fn run(
        space: &AssignSpace,
        member: &mut dyn CrowdMember,
        config: &MinerConfig,
    ) -> MinerOutcome {
        let mut asker = Asker::new(space, member, config, "horizontal");
        let mut heap: BinaryHeap<Reverse<(usize, Assignment)>> = BinaryHeap::new();
        let mut enqueued: HashSet<Assignment> = HashSet::new();

        for root in space.roots() {
            if enqueued.insert(root.clone()) {
                heap.push(Reverse((rank(space, &root), root)));
            }
        }

        while let Some(Reverse((_, phi))) = heap.pop() {
            if !asker.budget_left() {
                break;
            }
            let vocab = space.ontology().vocabulary();
            let significant = match asker.state.status(&phi, vocab) {
                Status::Insignificant => continue,
                Status::Significant => true,
                Status::Unclassified => {
                    // Apriori discipline: every predecessor must be known
                    // significant first. Predecessors have smaller rank, so
                    // if one is still unclassified it was never enqueued —
                    // enqueue it and retry this node afterwards.
                    let preds = asker.cache.predecessors(space, &phi);
                    let mut deferred = false;
                    for p in preds.iter() {
                        if asker.state.status(p, vocab) == Status::Unclassified
                            && enqueued.insert(p.clone())
                        {
                            heap.push(Reverse((rank(space, p), p.clone())));
                            deferred = true;
                        }
                    }
                    if deferred {
                        heap.push(Reverse((rank(space, &phi), phi)));
                        continue;
                    }
                    if preds
                        .iter()
                        .any(|p| asker.state.status(p, vocab) != Status::Significant)
                    {
                        // Some predecessor is insignificant (and inference
                        // will have marked us) or still unclassified after a
                        // defer cycle: skip.
                        continue;
                    }
                    asker.ask(&phi)
                }
            };
            if significant {
                let succs = asker.cache.successors(space, &phi);
                asker.on_nodes_generated(&succs);
                for s in succs.iter() {
                    if enqueued.insert(s.clone()) {
                        heap.push(Reverse((rank(space, s), s.clone())));
                    }
                }
            }
        }
        asker.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::vertical::VerticalMiner;
    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::{DbMember, MemberId};
    use oassis_ql::parse_query;
    use oassis_sparql::MatchMode;
    use oassis_store::ontology::figure1_ontology;
    use std::sync::Arc;

    fn setup(threshold: f64) -> (AssignSpace, DbMember) {
        let o = Arc::new(figure1_ontology());
        let src = format!(
            r#"SELECT FACT-SETS
               WHERE
                 $w subClassOf* Attraction.
                 $x instanceOf $w.
                 $x inside NYC.
                 $y subClassOf* Activity
               SATISFYING
                 $y+ doAt $x
               WITH SUPPORT = {threshold}"#
        );
        let q = parse_query(&src, &o).unwrap();
        let space =
            AssignSpace::build(Arc::clone(&o), &q, MatchMode::Semantic, Vec::new()).unwrap();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, _) = table3_dbs(&vocab);
        let m = DbMember::new(MemberId(1), d1, vocab);
        (space, m)
    }

    #[test]
    fn horizontal_finds_the_same_msps_as_vertical() {
        let (space, mut m1) = setup(0.3);
        let h = HorizontalMiner::run(&space, &mut m1, &MinerConfig::new(0.3));
        let (space2, mut m2) = setup(0.3);
        let v = VerticalMiner::run(&space2, &mut m2, &MinerConfig::new(0.3));
        let mut hm = h.msps.clone();
        let mut vm = v.msps.clone();
        hm.sort();
        vm.sort();
        assert_eq!(hm, vm);
    }

    #[test]
    fn horizontal_classifies_everything() {
        let (space, mut m1) = setup(0.3);
        let out = HorizontalMiner::run(&space, &mut m1, &MinerConfig::new(0.3));
        let vocab = space.ontology().vocabulary();
        for a in space.enumerate_single_valued(100_000).unwrap() {
            assert!(
                !out.state.is_unclassified(&a, vocab),
                "assignment {a} left unclassified"
            );
        }
    }

    #[test]
    fn rank_increases_along_edges() {
        let (space, _) = setup(0.3);
        for root in space.roots() {
            for s in space.successors(&root) {
                assert!(rank(&space, &s) > rank(&space, &root), "{root} -> {s}");
                for ss in space.successors(&s) {
                    assert!(rank(&space, &ss) > rank(&space, &s));
                }
            }
        }
    }

    #[test]
    fn budget_respected() {
        let (space, mut m1) = setup(0.3);
        let cfg = MinerConfig {
            max_questions: 2,
            ..MinerConfig::new(0.3)
        };
        let out = HorizontalMiner::run(&space, &mut m1, &cfg);
        assert!(out.stats.total_questions <= 2);
    }
}
