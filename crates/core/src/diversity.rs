//! Diversified top-k answer selection (Section 8's "returning the top-k
//! answers or diversified answers" extension).
//!
//! When a query yields many MSPs, the user may prefer k answers that
//! *differ* from each other over the k highest-support ones (ten biking
//! variants are less useful than biking + the zoo + a museum). The greedy
//! max-min procedure below starts from the best-supported answer and
//! repeatedly adds the answer farthest (by fact-set symmetric difference)
//! from everything chosen so far — the classic 2-approximation of the
//! max-min dispersion problem.

use oassis_vocab::FactSet;

use crate::engine::QueryAnswer;

/// Distance between two answers: the size of the symmetric difference of
/// their fact-sets.
pub fn factset_distance(a: &FactSet, b: &FactSet) -> usize {
    let only_a = a.iter().filter(|f| !b.contains(f)).count();
    let only_b = b.iter().filter(|f| !a.contains(f)).count();
    only_a + only_b
}

/// Greedily select up to `k` mutually diverse items; returns indices into
/// `items`. The first pick is the item with the highest score.
pub fn select_diverse(items: &[(FactSet, f64)], k: usize) -> Vec<usize> {
    if items.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut chosen: Vec<usize> = Vec::with_capacity(k.min(items.len()));
    let first = items
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.1.total_cmp(&b.1))
        .map(|(i, _)| i)
        .expect("non-empty");
    chosen.push(first);
    while chosen.len() < k.min(items.len()) {
        let next = items
            .iter()
            .enumerate()
            .filter(|(i, _)| !chosen.contains(i))
            .max_by_key(|(_, (fs, _))| {
                chosen
                    .iter()
                    .map(|&c| factset_distance(fs, &items[c].0))
                    .min()
                    .unwrap_or(0)
            })
            .map(|(i, _)| i);
        match next {
            Some(i) => chosen.push(i),
            None => break,
        }
    }
    chosen
}

/// Diversified top-k over query answers (valid answers preferred: they are
/// considered before the generalized ones).
pub fn diversify_answers(answers: &[QueryAnswer], k: usize) -> Vec<QueryAnswer> {
    let mut pool: Vec<&QueryAnswer> = answers.iter().filter(|a| a.valid).collect();
    if pool.len() < k {
        pool.extend(answers.iter().filter(|a| !a.valid));
    }
    let items: Vec<(FactSet, f64)> = pool
        .iter()
        .map(|a| (a.factset.clone(), a.support.unwrap_or(0.0)))
        .collect();
    select_diverse(&items, k)
        .into_iter()
        .map(|i| pool[i].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use oassis_vocab::{ElementId, Fact, RelationId};

    fn fs(ids: &[u32]) -> FactSet {
        FactSet::from_facts(
            ids.iter()
                .map(|&i| Fact::new(ElementId(i), RelationId(0), ElementId(100))),
        )
    }

    fn answer(ids: &[u32], support: f64, valid: bool) -> QueryAnswer {
        QueryAnswer {
            assignment: Assignment::empty(0),
            factset: fs(ids),
            valid,
            support: Some(support),
            rendered: format!("{ids:?}"),
        }
    }

    #[test]
    fn distance_is_symmetric_difference() {
        assert_eq!(factset_distance(&fs(&[1, 2]), &fs(&[2, 3])), 2);
        assert_eq!(factset_distance(&fs(&[1]), &fs(&[1])), 0);
        assert_eq!(factset_distance(&fs(&[]), &fs(&[1, 2])), 2);
    }

    #[test]
    fn first_pick_is_highest_support() {
        let items = vec![(fs(&[1]), 0.3), (fs(&[2]), 0.9), (fs(&[3]), 0.5)];
        let chosen = select_diverse(&items, 1);
        assert_eq!(chosen, vec![1]);
    }

    #[test]
    fn greedy_prefers_far_items() {
        // Item 0 (best): {1,2}. Item 1: {1,3} (distance 2). Item 2: {7,8}
        // (distance 4) — the diverse pick takes item 2 before item 1.
        let items = vec![(fs(&[1, 2]), 0.9), (fs(&[1, 3]), 0.8), (fs(&[7, 8]), 0.7)];
        let chosen = select_diverse(&items, 2);
        assert_eq!(chosen, vec![0, 2]);
        let all = select_diverse(&items, 3);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn k_larger_than_pool_returns_everything() {
        let items = vec![(fs(&[1]), 0.5)];
        assert_eq!(select_diverse(&items, 10).len(), 1);
        assert!(select_diverse(&[], 3).is_empty());
        assert!(select_diverse(&items, 0).is_empty());
    }

    #[test]
    fn diversify_answers_prefers_valid() {
        let answers = vec![
            answer(&[1, 2], 0.9, false),
            answer(&[3, 4], 0.5, true),
            answer(&[5, 6], 0.4, true),
        ];
        let picked = diversify_answers(&answers, 2);
        assert_eq!(picked.len(), 2);
        assert!(picked.iter().all(|a| a.valid), "valid answers fill k first");
        // When valid answers cannot fill k, invalid ones complete the set.
        let picked3 = diversify_answers(&answers, 3);
        assert_eq!(picked3.len(), 3);
    }
}
