//! Natural-language question rendering (Section 6.2).
//!
//! The prototype translates assignments into questions using manually
//! created, domain-specific templates, e.g. the assignment φ17 becomes
//! *"How often do you engage in ball games in Central Park?"*.
//! [`QuestionTemplates`] holds one phrase template per relation with `{s}` /
//! `{o}` placeholders and renders the three question kinds.

use std::collections::HashMap;

use oassis_vocab::{Fact, FactSet, RelationId, Vocabulary};

/// Per-relation phrase templates.
#[derive(Debug, Clone)]
pub struct QuestionTemplates {
    by_relation: HashMap<RelationId, String>,
    fallback: String,
}

impl Default for QuestionTemplates {
    fn default() -> Self {
        QuestionTemplates {
            by_relation: HashMap::new(),
            fallback: "{s} {r} {o}".to_owned(),
        }
    }
}

impl QuestionTemplates {
    /// Templates with only the generic fallback phrase.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a phrase template for `relation`; `{s}` and `{o}` are
    /// replaced by the subject/object names, e.g. `"do {s} in {o}"`.
    pub fn set(&mut self, relation: RelationId, template: &str) -> &mut Self {
        self.by_relation.insert(relation, template.to_owned());
        self
    }

    /// The travel-domain templates used by the running example.
    pub fn travel_defaults(vocab: &Vocabulary) -> Self {
        let mut t = Self::new();
        if let Some(r) = vocab.relation("doAt") {
            t.set(r, "do {s} at {o}");
        }
        if let Some(r) = vocab.relation("eatAt") {
            t.set(r, "eat {s} at {o}");
        }
        t
    }

    /// Render one fact as a verb phrase.
    pub fn phrase(&self, fact: &Fact, vocab: &Vocabulary) -> String {
        let template = self
            .by_relation
            .get(&fact.relation)
            .map_or(self.fallback.as_str(), String::as_str);
        template
            .replace("{s}", vocab.element_name(fact.subject))
            .replace("{r}", vocab.relation_name(fact.relation))
            .replace("{o}", vocab.element_name(fact.object))
    }

    /// A concrete question: *"How often do you X and also Y?"*.
    pub fn concrete(&self, fs: &FactSet, vocab: &Vocabulary) -> String {
        let phrases: Vec<String> = fs.iter().map(|f| self.phrase(f, vocab)).collect();
        match phrases.as_slice() {
            [] => "How often does nothing in particular happen?".to_owned(),
            [one] => format!("How often do you {one}?"),
            many => format!(
                "How often do you {} and also {}?",
                many[..many.len() - 1].join(", "),
                many[many.len() - 1]
            ),
        }
    }

    /// A specialization question: *"You sometimes X — can you specify what
    /// kind? How often do you do that?"*.
    pub fn specialization(&self, base: &FactSet, vocab: &Vocabulary) -> String {
        let phrases: Vec<String> = base.iter().map(|f| self.phrase(f, vocab)).collect();
        format!(
            "You sometimes {} — can you specify what kind? How often do you do that?",
            phrases.join(" and ")
        )
    }

    /// A `MORE` prompt: *"What else do you do when you X?"*.
    pub fn more(&self, base: &FactSet, vocab: &Vocabulary) -> String {
        let phrases: Vec<String> = base.iter().map(|f| self.phrase(f, vocab)).collect();
        format!("What else do you do when you {}?", phrases.join(" and "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_store::ontology::figure1_ontology;

    fn fact(vocab: &Vocabulary, s: &str, r: &str, o: &str) -> Fact {
        Fact::new(
            vocab.element(s).unwrap(),
            vocab.relation(r).unwrap(),
            vocab.element(o).unwrap(),
        )
    }

    #[test]
    fn concrete_single_fact() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let t = QuestionTemplates::travel_defaults(v);
        let fs = FactSet::from_facts([fact(v, "Biking", "doAt", "Central Park")]);
        assert_eq!(
            t.concrete(&fs, v),
            "How often do you do Biking at Central Park?"
        );
    }

    #[test]
    fn concrete_bundles_facts_with_and_also() {
        // "How often do you go to Central Park and also eat at Maoz
        // Vegetarian?" — the paper's bundled-question example.
        let o = figure1_ontology();
        let v = o.vocabulary();
        let t = QuestionTemplates::travel_defaults(v);
        let fs = FactSet::from_facts([
            fact(v, "Biking", "doAt", "Central Park"),
            fact(v, "Falafel", "eatAt", "Maoz Veg."),
        ]);
        let q = t.concrete(&fs, v);
        assert!(q.starts_with("How often do you"), "{q}");
        assert!(q.contains("and also"), "{q}");
        assert!(q.contains("eat Falafel at Maoz Veg."), "{q}");
    }

    #[test]
    fn fallback_template() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let t = QuestionTemplates::new();
        let fs = FactSet::from_facts([fact(v, "Central Park", "inside", "NYC")]);
        assert_eq!(
            t.concrete(&fs, v),
            "How often do you Central Park inside NYC?"
        );
    }

    #[test]
    fn specialization_and_more_prompts() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let t = QuestionTemplates::travel_defaults(v);
        let fs = FactSet::from_facts([fact(v, "Sport", "doAt", "Central Park")]);
        let q = t.specialization(&fs, v);
        assert!(q.contains("specify what kind"), "{q}");
        let m = t.more(&fs, v);
        assert!(m.starts_with("What else do you do"), "{m}");
    }

    #[test]
    fn empty_factset_has_a_defined_rendering() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let t = QuestionTemplates::new();
        assert!(!t.concrete(&FactSet::new(), v).is_empty());
    }
}
