//! Association-rule mining over collected crowd answers.
//!
//! The paper lists association rules as an OASSIS-QL capability described in
//! its language guide (Sections 3 and 8; the authors' earlier crowd-mining work mines
//! them directly). This module derives rules *from the answers already
//! collected for a fact-set query* — no additional crowd questions: for any
//! two asked fact-sets `A ⊂ F`, the rule `A ⇒ F∖A` has
//!
//! * support   `supp(F)` (how often the whole pattern holds), and
//! * confidence `supp(F) / supp(A)` (how often the consequent follows the
//!   antecedent),
//!
//! both computable from the [`CrowdCache`].

use oassis_crowd::CrowdCache;
use oassis_vocab::{Fact, FactSet};

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// The rule body `A`.
    pub antecedent: FactSet,
    /// The rule head `F ∖ A`.
    pub consequent: FactSet,
    /// Aggregated support of the full pattern `A ∪ consequent`.
    pub support: f64,
    /// `supp(A ∪ consequent) / supp(A)`.
    pub confidence: f64,
}

/// Mine association rules from a query execution's answer cache.
///
/// Every pair of asked fact-sets `(A, F)` with `A` a strict syntactic
/// subset of `F` yields a candidate rule; rules below `min_support` or
/// `min_confidence` are dropped. Supports are aggregated by averaging each
/// fact-set's answers (the paper's default black-box).
pub fn mine_rules(
    cache: &CrowdCache,
    min_support: f64,
    min_confidence: f64,
) -> Vec<AssociationRule> {
    let entries: Vec<(&FactSet, f64)> = cache
        .iter()
        .filter_map(|(fs, answers)| {
            if fs.is_empty() || answers.is_empty() {
                return None;
            }
            let avg = answers.iter().map(|(_, s)| s).sum::<f64>() / answers.len() as f64;
            Some((fs, avg))
        })
        .collect();

    let mut rules = Vec::new();
    for &(full, full_support) in &entries {
        if full_support < min_support || full.len() < 2 {
            continue;
        }
        for &(ante, ante_support) in &entries {
            if ante.len() >= full.len() || ante_support <= 0.0 {
                continue;
            }
            if !is_strict_subset(ante, full) {
                continue;
            }
            let confidence = (full_support / ante_support).min(1.0);
            if confidence < min_confidence {
                continue;
            }
            let consequent: FactSet = full
                .iter()
                .filter(|f| !ante.contains(f))
                .copied()
                .collect::<Vec<Fact>>()
                .into_iter()
                .collect();
            rules.push(AssociationRule {
                antecedent: ante.clone(),
                consequent,
                support: full_support,
                confidence,
            });
        }
    }
    // Most confident first; ties broken by support, then deterministically.
    rules.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.support.total_cmp(&a.support))
            .then_with(|| (&a.antecedent, &a.consequent).cmp(&(&b.antecedent, &b.consequent)))
    });
    rules
}

fn is_strict_subset(a: &FactSet, b: &FactSet) -> bool {
    a.len() < b.len() && a.iter().all(|f| b.contains(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_crowd::MemberId;
    use oassis_store::ontology::figure1_ontology;
    use oassis_vocab::Vocabulary;

    fn fact(v: &Vocabulary, s: &str, r: &str, o: &str) -> Fact {
        Fact::new(
            v.element(s).unwrap(),
            v.relation(r).unwrap(),
            v.element(o).unwrap(),
        )
    }

    fn cache_with(v: &Vocabulary) -> (CrowdCache, FactSet, FactSet) {
        // supp(biking) = 0.5, supp(biking + falafel) = 0.4 ⇒ confidence 0.8.
        let biking = FactSet::from_facts([fact(v, "Biking", "doAt", "Central Park")]);
        let combo = FactSet::from_facts([
            fact(v, "Biking", "doAt", "Central Park"),
            fact(v, "Falafel", "eatAt", "Maoz Veg."),
        ]);
        let mut cache = CrowdCache::new();
        cache.record(&biking, MemberId(1), 0.5);
        cache.record(&combo, MemberId(1), 0.4);
        (cache, biking, combo)
    }

    #[test]
    fn derives_rule_with_expected_confidence() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let (cache, biking, combo) = cache_with(v);
        let rules = mine_rules(&cache, 0.1, 0.5);
        assert_eq!(rules.len(), 1);
        let r = &rules[0];
        assert_eq!(r.antecedent, biking);
        assert_eq!(r.consequent.len(), 1);
        assert!((r.confidence - 0.8).abs() < 1e-12);
        assert!((r.support - 0.4).abs() < 1e-12);
        assert_eq!(r.antecedent.union(&r.consequent), combo);
    }

    #[test]
    fn thresholds_filter_rules() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let (cache, _, _) = cache_with(v);
        assert!(mine_rules(&cache, 0.45, 0.5).is_empty(), "min_support");
        assert!(mine_rules(&cache, 0.1, 0.9).is_empty(), "min_confidence");
    }

    #[test]
    fn multi_fact_antecedents() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let f1 = fact(v, "Biking", "doAt", "Central Park");
        let f2 = fact(v, "Falafel", "eatAt", "Maoz Veg.");
        let f3 = fact(v, "Rent Bikes", "doAt", "Boathouse");
        let mut cache = CrowdCache::new();
        cache.record(&FactSet::from_facts([f1, f2]), MemberId(1), 0.4);
        cache.record(&FactSet::from_facts([f1, f2, f3]), MemberId(1), 0.4);
        let rules = mine_rules(&cache, 0.1, 0.5);
        // {f1,f2} ⇒ {f3} with confidence 1.0.
        let top = &rules[0];
        assert_eq!(top.antecedent.len(), 2);
        assert_eq!(top.consequent.as_slice(), &[f3]);
        assert!((top.confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_is_capped_at_one() {
        // Noisy answers can make supp(full) > supp(subset).
        let o = figure1_ontology();
        let v = o.vocabulary();
        let f1 = fact(v, "Biking", "doAt", "Central Park");
        let f2 = fact(v, "Falafel", "eatAt", "Maoz Veg.");
        let mut cache = CrowdCache::new();
        cache.record(&FactSet::from_facts([f1]), MemberId(1), 0.2);
        cache.record(&FactSet::from_facts([f1, f2]), MemberId(1), 0.3);
        let rules = mine_rules(&cache, 0.1, 0.5);
        assert!(rules.iter().all(|r| r.confidence <= 1.0));
    }

    #[test]
    fn empty_cache_yields_no_rules() {
        assert!(mine_rules(&CrowdCache::new(), 0.0, 0.0).is_empty());
    }

    #[test]
    fn rules_are_sorted_by_confidence() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let f1 = fact(v, "Biking", "doAt", "Central Park");
        let f2 = fact(v, "Falafel", "eatAt", "Maoz Veg.");
        let f3 = fact(v, "Pasta", "eatAt", "Pine");
        let mut cache = CrowdCache::new();
        cache.record(&FactSet::from_facts([f1]), MemberId(1), 0.8);
        cache.record(&FactSet::from_facts([f1, f2]), MemberId(1), 0.4);
        cache.record(&FactSet::from_facts([f3]), MemberId(1), 0.5);
        cache.record(&FactSet::from_facts([f3, f2]), MemberId(1), 0.45);
        let rules = mine_rules(&cache, 0.1, 0.1);
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }
}
