//! The assignment space: validity, DAG membership and lazy generation
//! (Section 5 of the paper).
//!
//! Starting from the SPARQL results of the `WHERE` clause (the *base valid*
//! single-valued assignments), the space answers, without ever materializing
//! the full DAG:
//!
//! * **membership** in the expanded set `𝒜 = {φ | ∃φ' ∈ 𝒜valid : φ ≤ φ'}`
//!   (line 1 of Algorithm 1). By Proposition 5.1 a multi-valued assignment is
//!   valid iff each of its single-valued *selections* is base-valid, so
//!   `φ ∈ 𝒜` iff every selection over the WHERE-bound variables is pointwise
//!   dominated by some base tuple — a check that needs only the base tuples;
//! * **validity** (`φ(A_WHERE) ≤ O` plus multiplicity admission);
//! * **immediate successors** — one-step specialization of a value, addition
//!   of a value (lazy multiplicity combination), or addition of a `MORE`
//!   fact — and **immediate predecessors** (one-step generalization, with
//!   absorption into the canonical antichain);
//! * **instantiation** `φ(A_SAT)` into the fact-set asked about.
//!
//! Variables never bound by the WHERE clause (`[]` blanks, relation
//! variables, itemset-mining queries with an empty WHERE) are *free*: any
//! vocabulary value is valid for them, and their generation domain is the
//! whole element (or relation) taxonomy.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};

use oassis_obs::{names, null_sink, EventSink, SinkExt};
use oassis_ql::{Multiplicity, QlRel, QlTerm, Query, SatPattern};
use oassis_sparql::{evaluate_reference, evaluate_where_with_sink, MatchMode, Var};
use oassis_store::{Ontology, Term};
use oassis_vocab::{Fact, FactSet};

use crate::assignment::Assignment;
use crate::value::AValue;

/// How a `SATISFYING` variable relates to the `WHERE` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Bound by the WHERE clause: values come from SPARQL results.
    Bound,
    /// Free element variable (`[]`, or a named var absent from WHERE).
    FreeElem,
    /// Free relation variable (`$p`, `[]` in relation position).
    FreeRel,
}

/// Errors raised while building an [`AssignSpace`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// A variable is used both as an element and as a relation.
    MixedVarUse(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::MixedVarUse(v) => {
                write!(f, "variable ${v} is used both as element and as relation")
            }
        }
    }
}

impl std::error::Error for SpaceError {}

/// The lazily generated assignment DAG for one query.
#[derive(Debug, Clone)]
pub struct AssignSpace {
    ontology: Arc<Ontology>,
    sat_patterns: Vec<SatPattern>,
    more: bool,
    sat_vars: Vec<Var>,
    var_index: HashMap<Var, usize>,
    var_names: Vec<String>,
    mults: Vec<Multiplicity>,
    kinds: Vec<VarKind>,
    /// Positions (into `sat_vars`) of WHERE-bound variables.
    bound_positions: Vec<usize>,
    /// Base valid tuples: one value per bound position.
    base_tuples: Vec<Vec<AValue>>,
    /// Per-variable generation domain (ancestor closure of valid values for
    /// bound vars; `None` = the whole taxonomy, for free vars).
    domains: Vec<Option<HashSet<AValue>>>,
    /// Candidate facts for the `MORE` clause.
    more_domain: Vec<Fact>,
}

impl AssignSpace {
    /// Build the space for `query` by evaluating its WHERE clause.
    ///
    /// `more_domain` supplies the candidate extra facts for the `MORE`
    /// keyword (in the real system these come from open-ended crowd answers;
    /// simulations extract them from the simulated members' histories).
    pub fn build(
        ontology: Arc<Ontology>,
        query: &Query,
        mode: MatchMode,
        more_domain: Vec<Fact>,
    ) -> Result<AssignSpace, SpaceError> {
        Self::build_with_sink(ontology, query, mode, more_domain, &null_sink())
    }

    /// [`build`](Self::build) with instrumentation: the WHERE-clause SPARQL
    /// evaluation reports its pattern scans, path-expansion depths and
    /// plan-rewrite counts to `sink` (see `sparql.pattern.scan` /
    /// `sparql.path.depth` / `sparql.plan.*`).
    pub fn build_with_sink(
        ontology: Arc<Ontology>,
        query: &Query,
        mode: MatchMode,
        more_domain: Vec<Fact>,
        sink: &Arc<dyn EventSink>,
    ) -> Result<AssignSpace, SpaceError> {
        Self::build_with_planner(ontology, query, mode, more_domain, sink, true)
    }

    /// [`build_with_sink`](Self::build_with_sink) with an explicit choice of
    /// WHERE evaluator. With `use_planner` the clause is compiled to a
    /// logical plan, rewritten (constraint pushdown, taxonomy unfolding,
    /// empty-branch pruning, join reordering) and interpreted; without it
    /// the naive reference evaluator runs the AST directly — the two agree
    /// binding-for-binding, so this only trades evaluation cost, never
    /// answers. The flag is threaded from
    /// [`EngineConfig::use_query_planner`](crate::EngineConfig).
    pub fn build_with_planner(
        ontology: Arc<Ontology>,
        query: &Query,
        mode: MatchMode,
        more_domain: Vec<Fact>,
        sink: &Arc<dyn EventSink>,
        use_planner: bool,
    ) -> Result<AssignSpace, SpaceError> {
        let sat_vars = query.satisfying_vars();
        let var_index: HashMap<Var, usize> =
            sat_vars.iter().enumerate().map(|(i, v)| (*v, i)).collect();
        let var_names: Vec<String> = sat_vars
            .iter()
            .map(|v| query.vars.name(*v).to_owned())
            .collect();
        let mults: Vec<Multiplicity> = sat_vars.iter().map(|v| query.multiplicity_of(*v)).collect();

        // Classify variables; detect element/relation conflicts.
        let mut kinds: Vec<Option<VarKind>> = vec![None; sat_vars.len()];
        let where_vars: HashSet<Var> = query.where_vars().into_iter().collect();
        for p in &query.satisfying.patterns {
            for t in [&p.subject, &p.object] {
                if let QlTerm::Var(v) = t {
                    let i = var_index[v];
                    let k = if where_vars.contains(v) {
                        VarKind::Bound
                    } else {
                        VarKind::FreeElem
                    };
                    match kinds[i] {
                        None => kinds[i] = Some(k),
                        Some(VarKind::FreeRel) => {
                            return Err(SpaceError::MixedVarUse(var_names[i].clone()))
                        }
                        Some(_) => {}
                    }
                }
            }
            if let QlRel::Var(v) = &p.relation {
                let i = var_index[v];
                match kinds[i] {
                    None => kinds[i] = Some(VarKind::FreeRel),
                    Some(VarKind::FreeRel) => {}
                    Some(_) => return Err(SpaceError::MixedVarUse(var_names[i].clone())),
                }
            }
        }
        let kinds: Vec<VarKind> = kinds
            .into_iter()
            .map(|k| k.expect("every sat var occurs in a sat pattern"))
            .collect();

        let bound_positions: Vec<usize> = (0..sat_vars.len())
            .filter(|&i| kinds[i] == VarKind::Bound)
            .collect();

        // Evaluate WHERE and project bindings onto the bound sat vars.
        let mut base_tuples: Vec<Vec<AValue>> = Vec::new();
        if !bound_positions.is_empty() {
            let bindings = if use_planner {
                evaluate_where_with_sink(&ontology, &query.where_clause, &query.vars, mode, sink)
            } else {
                evaluate_reference(&ontology, &query.where_clause, &query.vars, mode)
            };
            let mut seen = HashSet::new();
            'bind: for b in &bindings {
                let mut tuple = Vec::with_capacity(bound_positions.len());
                for &i in &bound_positions {
                    match b.get(sat_vars[i]) {
                        Some(Term::Element(e)) => tuple.push(AValue::Elem(e)),
                        // Literal-valued or unbound sat vars cannot form
                        // facts; skip such bindings.
                        _ => continue 'bind,
                    }
                }
                if seen.insert(tuple.clone()) {
                    base_tuples.push(tuple);
                }
            }
        }

        // Query anchors: a WHERE pattern chain like `$w subClassOf*
        // Attraction. $x instanceOf $w` bounds the generalization of $w and
        // $x at `Attraction` — the paper's Figure 3 DAG accordingly has
        // (Attraction, Activity) as its most general node, not (Thing,
        // Thing). Collect, per variable, the constant elements it must stay
        // a taxonomy-descendant of, propagating through var-var
        // subClassOf/instanceOf patterns to a fixpoint.
        let taxo_rels: Vec<oassis_vocab::RelationId> =
            [ontology.sub_class_of(), ontology.instance_of()]
                .into_iter()
                .flatten()
                .collect();
        let mut anchors: HashMap<Var, HashSet<oassis_vocab::ElementId>> = HashMap::new();
        loop {
            let mut changed = false;
            // Anchors come from top-level (required) patterns only: a triple
            // inside a UNION branch or OPTIONAL group does not bound every
            // solution, so it must not cap the generation domain. Compound
            // `/`-`|` paths carry no single relation and are skipped.
            for p in query.where_clause.required_triples() {
                let Some(rel) = p.path.relation() else {
                    continue;
                };
                if !taxo_rels.contains(&rel) {
                    continue;
                }
                let Some(v) = p.subject.as_var() else {
                    continue;
                };
                let additions: Vec<oassis_vocab::ElementId> = match &p.object {
                    oassis_sparql::PatTerm::Const(Term::Element(c)) => vec![*c],
                    oassis_sparql::PatTerm::Var(w) => anchors
                        .get(w)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default(),
                    _ => Vec::new(),
                };
                if !additions.is_empty() {
                    let entry = anchors.entry(v).or_default();
                    for c in additions {
                        changed |= entry.insert(c);
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Generation domains: ancestor closure of valid values per bound
        // var, capped at the variable's anchors.
        let vocab = ontology.vocabulary();
        let mut domains: Vec<Option<HashSet<AValue>>> = Vec::with_capacity(sat_vars.len());
        for (i, kind) in kinds.iter().enumerate() {
            match kind {
                VarKind::Bound => {
                    let mut dom: HashSet<AValue> = HashSet::new();
                    let bpos = bound_positions.iter().position(|&p| p == i).unwrap();
                    for t in &base_tuples {
                        if let AValue::Elem(e) = t[bpos] {
                            for a in vocab.elements_order().ancestors(e) {
                                dom.insert(AValue::Elem(a));
                            }
                        }
                    }
                    if let Some(anchor_set) = anchors.get(&sat_vars[i]) {
                        dom.retain(|v| match v {
                            AValue::Elem(e) => anchor_set.iter().all(|c| vocab.elem_leq(*c, *e)),
                            AValue::Rel(_) => true,
                        });
                    }
                    domains.push(Some(dom));
                }
                VarKind::FreeElem | VarKind::FreeRel => domains.push(None),
            }
        }

        Ok(AssignSpace {
            ontology,
            sat_patterns: query.satisfying.patterns.clone(),
            more: query.satisfying.more,
            sat_vars,
            var_index,
            var_names,
            mults,
            kinds,
            bound_positions,
            base_tuples,
            domains,
            more_domain,
        })
    }

    /// The ontology this space evaluates against.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Number of `SATISFYING` variables.
    pub fn nvars(&self) -> usize {
        self.sat_vars.len()
    }

    /// Display names of the variables, in dense order.
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// The kind of variable `x`.
    pub fn kind(&self, x: usize) -> VarKind {
        self.kinds[x]
    }

    /// The multiplicity of variable `x`.
    pub fn mult(&self, x: usize) -> Multiplicity {
        self.mults[x]
    }

    /// Number of base (mult-free, WHERE-bound) valid tuples.
    pub fn base_count(&self) -> usize {
        self.base_tuples.len()
    }

    /// The `MORE`-fact candidate domain.
    pub fn more_domain(&self) -> &[Fact] {
        &self.more_domain
    }

    /// `a ≤ b` under this space's vocabulary.
    pub fn leq(&self, a: &Assignment, b: &Assignment) -> bool {
        a.leq(b, self.ontology.vocabulary())
    }

    /// Whether `φ ∈ 𝒜` (a generalization of some valid assignment).
    ///
    /// Every selection of one value per bound variable must be pointwise
    /// dominated by a single base tuple; free variables and MORE facts never
    /// constrain membership.
    pub fn in_space(&self, phi: &Assignment) -> bool {
        self.selections_check(phi, |sel, tuple, vocab| {
            sel.iter().zip(tuple).all(|(v, t)| v.leq(t, vocab))
        })
    }

    /// Whether `φ` is *valid*: every bound selection is exactly a base
    /// tuple, every variable's value count is admitted by its multiplicity,
    /// and MORE facts only appear if the query requested them.
    pub fn is_valid(&self, phi: &Assignment) -> bool {
        if !self.more && !phi.more_facts().is_empty() {
            return false;
        }
        for x in 0..self.nvars() {
            if !self.mults[x].admits(phi.values(x).len() as u32) {
                return false;
            }
        }
        self.selections_check(phi, |sel, tuple, _| sel == tuple)
    }

    /// Check `pred(selection, base_tuple)` for every bound-variable
    /// selection: each must have a witnessing base tuple.
    fn selections_check<F>(&self, phi: &Assignment, pred: F) -> bool
    where
        F: Fn(&[AValue], &[AValue], &oassis_vocab::Vocabulary) -> bool,
    {
        if self.bound_positions.is_empty() {
            return true;
        }
        if self.base_tuples.is_empty() {
            // No valid WHERE bindings: only assignments with some empty
            // bound set (which have no selections) are vacuously in 𝒜.
            return self
                .bound_positions
                .iter()
                .any(|&i| phi.values(i).is_empty());
        }
        let vocab = self.ontology.vocabulary();
        let sets: Vec<&[AValue]> = self
            .bound_positions
            .iter()
            .map(|&i| phi.values(i))
            .collect();
        // An empty bound set yields no selections over that variable; the
        // remaining variables must still be coverable. Treat an empty set as
        // the single "wildcard" choice by skipping it in the comparison.
        let mut idx = vec![0usize; sets.len()];
        loop {
            let selection: Vec<Option<AValue>> = sets
                .iter()
                .zip(&idx)
                .map(|(s, &i)| s.get(i).copied())
                .collect();
            let ok = self.base_tuples.iter().any(|tuple| {
                selection.iter().zip(tuple).all(|(sv, tv)| match sv {
                    None => true,
                    Some(v) => pred(std::slice::from_ref(v), std::slice::from_ref(tv), vocab),
                })
            });
            if !ok {
                return false;
            }
            // Advance the mixed-radix counter.
            let mut k = 0;
            loop {
                if k == sets.len() {
                    return true;
                }
                let len = sets[k].len().max(1);
                idx[k] += 1;
                if idx[k] < len {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }

    /// The minimal (most general) assignments of `𝒜` — the traversal roots.
    pub fn roots(&self) -> Vec<Assignment> {
        let vocab = self.ontology.vocabulary();
        let mut out: HashSet<Assignment> = HashSet::new();

        // Per-variable minimal value sets.
        let min_sets: Vec<Vec<Vec<AValue>>> = (0..self.nvars())
            .map(|x| {
                if self.mults[x].min() == 0 {
                    return vec![Vec::new()];
                }
                match self.kinds[x] {
                    VarKind::Bound => {
                        // Minimal values of the (anchor-capped) domain.
                        let dom = self.domains[x]
                            .as_ref()
                            .expect("bound vars have explicit domains");
                        let mut roots: HashSet<AValue> = HashSet::new();
                        for v in dom {
                            if self.parents_of(x, *v).is_empty() {
                                roots.insert(*v);
                            }
                        }
                        roots.into_iter().map(|r| vec![r]).collect()
                    }
                    VarKind::FreeElem => vocab
                        .elements_order()
                        .roots()
                        .map(|e| vec![AValue::Elem(e)])
                        .collect(),
                    VarKind::FreeRel => vocab
                        .relations_order()
                        .roots()
                        .map(|r| vec![AValue::Rel(r)])
                        .collect(),
                }
            })
            .collect();

        // Cartesian product of per-variable minimal sets.
        let mut stack: Vec<(usize, Vec<Vec<AValue>>)> = vec![(0, Vec::new())];
        while let Some((x, acc)) = stack.pop() {
            if x == self.nvars() {
                let cand = Assignment::from_sets(acc, vocab);
                if self.in_space(&cand) {
                    out.insert(cand);
                }
                continue;
            }
            for set in &min_sets[x] {
                let mut next = acc.clone();
                next.push(set.clone());
                stack.push((x + 1, next));
            }
        }
        let mut v: Vec<Assignment> = out.into_iter().collect();
        v.sort();
        v
    }

    /// Values available for specializing / extending variable `x`.
    fn children_of(&self, x: usize, v: AValue) -> Vec<AValue> {
        let vocab = self.ontology.vocabulary();
        match (self.kinds[x], v) {
            (VarKind::FreeRel, AValue::Rel(r)) => vocab
                .relations_order()
                .children(r)
                .iter()
                .map(|&c| AValue::Rel(c))
                .collect(),
            (_, AValue::Elem(e)) => {
                let children = vocab.elements_order().children(e);
                match &self.domains[x] {
                    Some(dom) => children
                        .iter()
                        .map(|&c| AValue::Elem(c))
                        .filter(|c| dom.contains(c))
                        .collect(),
                    None => children.iter().map(|&c| AValue::Elem(c)).collect(),
                }
            }
            _ => Vec::new(),
        }
    }

    fn parents_of(&self, x: usize, v: AValue) -> Vec<AValue> {
        let vocab = self.ontology.vocabulary();
        match (self.kinds[x], v) {
            (VarKind::FreeRel, AValue::Rel(r)) => vocab
                .relations_order()
                .parents(r)
                .iter()
                .map(|&p| AValue::Rel(p))
                .collect(),
            (_, AValue::Elem(e)) => {
                let parents = vocab.elements_order().parents(e);
                match &self.domains[x] {
                    // Generalization stops at the query anchors (the domain
                    // is capped there), matching the Figure 3 DAG.
                    Some(dom) => parents
                        .iter()
                        .map(|&p| AValue::Elem(p))
                        .filter(|p| dom.contains(p))
                        .collect(),
                    None => parents.iter().map(|&p| AValue::Elem(p)).collect(),
                }
            }
            _ => Vec::new(),
        }
    }

    /// The full generation domain of variable `x`.
    fn domain_values(&self, x: usize) -> Vec<AValue> {
        let vocab = self.ontology.vocabulary();
        match &self.domains[x] {
            Some(dom) => dom.iter().copied().collect(),
            None => match self.kinds[x] {
                VarKind::FreeRel => vocab.relations().map(|(r, _)| AValue::Rel(r)).collect(),
                _ => vocab.elements().map(|(e, _)| AValue::Elem(e)).collect(),
            },
        }
    }

    /// Immediate successors of `φ` within `𝒜` (lazy DAG edge generation).
    pub fn successors(&self, phi: &Assignment) -> Vec<Assignment> {
        let vocab = self.ontology.vocabulary();
        let mut out: HashSet<Assignment> = HashSet::new();

        for x in 0..self.nvars() {
            let set = phi.values(x);

            // (a) Specialize one value by one taxonomy step.
            for &v in set {
                for c in self.children_of(x, v) {
                    let mut vals: Vec<AValue> = set.iter().copied().filter(|w| *w != v).collect();
                    vals.push(c);
                    let cand = phi.with_values(x, vals, vocab);
                    if phi.lt(&cand, vocab) && self.in_space(&cand) {
                        out.insert(cand);
                    }
                }
            }

            // (b) Extend the set by one value (multiplicity combination,
            // Proposition 5.1), staying within the multiplicity's max and
            // keeping the result an antichain. Immediacy: no strict
            // generalization of the added value would also keep the
            // antichain.
            let max = self.mults[x].max();
            if max.is_none_or(|m| (set.len() as u32) < m) && (set.is_empty() || max != Some(1)) {
                for v in self.domain_values(x) {
                    if set.iter().any(|w| v.leq(w, vocab) || w.leq(&v, vocab)) {
                        continue; // not an antichain
                    }
                    // Immediate only if every parent of v collides with the set
                    // (or v is a root).
                    let parents = self.parents_of(x, v);
                    let immediate = parents.is_empty()
                        || parents
                            .iter()
                            .all(|p| set.iter().any(|w| p.leq(w, vocab) || w.leq(p, vocab)));
                    if !immediate {
                        continue;
                    }
                    let mut vals: Vec<AValue> = set.to_vec();
                    vals.push(v);
                    let cand = phi.with_values(x, vals, vocab);
                    if phi.lt(&cand, vocab) && self.in_space(&cand) {
                        out.insert(cand);
                    }
                }
            }
        }

        // (c) Add one MORE fact. Guards: (i) MORE facts only decorate
        // structurally complete nodes (every mandatory variable bound) —
        // otherwise an empty-variable node plus a MORE fact shadows the
        // assignment that binds the variable properly; (ii) skip facts
        // comparable with the node's own instantiation — extra "advice"
        // that merely restates or refines a mined fact belongs to the
        // variable dimensions, not to MORE.
        if self.more && !self.more_domain.is_empty() {
            let complete =
                (0..self.nvars()).all(|x| !phi.values(x).is_empty() || self.mults[x].min() == 0);
            if complete {
                let inst = self.instantiate(phi);
                for &f in &self.more_domain {
                    if phi.more_facts().contains(&f) {
                        continue;
                    }
                    let overlaps = inst
                        .iter()
                        .any(|g| vocab.fact_leq(&f, g) || vocab.fact_leq(g, &f));
                    if overlaps {
                        continue;
                    }
                    out.insert(phi.with_more_fact(f));
                }
            }
        }

        let mut v: Vec<Assignment> = out.into_iter().collect();
        v.sort();
        v
    }

    /// Immediate predecessors of `φ` (always within `𝒜`, which is downward
    /// closed).
    pub fn predecessors(&self, phi: &Assignment) -> Vec<Assignment> {
        let vocab = self.ontology.vocabulary();
        let mut out: HashSet<Assignment> = HashSet::new();

        for x in 0..self.nvars() {
            let set = phi.values(x);
            for &v in set {
                // Generalize v one step; absorption into the antichain also
                // yields the "drop" predecessors.
                for p in self.parents_of(x, v) {
                    let mut vals: Vec<AValue> = set.iter().copied().filter(|w| *w != v).collect();
                    vals.push(p);
                    let cand = phi.with_values(x, vals, vocab);
                    if cand.lt(phi, vocab) {
                        out.insert(cand);
                    }
                }
                // A root value can only be dropped.
                if self.parents_of(x, v).is_empty() && (set.len() > 1 || self.min_floor(x) == 0) {
                    let vals: Vec<AValue> = set.iter().copied().filter(|w| *w != v).collect();
                    let cand = phi.with_values(x, vals, vocab);
                    if cand.lt(phi, vocab) {
                        out.insert(cand);
                    }
                }
            }
        }

        for i in 0..phi.more_facts().len() {
            out.insert(phi.without_more_fact(i));
        }

        let mut v: Vec<Assignment> = out.into_iter().collect();
        v.sort();
        v
    }

    /// The minimal admissible set size used when generating predecessors:
    /// 0 when the multiplicity allows dropping the variable entirely, else 1.
    fn min_floor(&self, x: usize) -> u32 {
        self.mults[x].min().min(1)
    }

    /// Instantiate `φ(A_SAT)`: substitute value sets into the meta-facts
    /// (cross product within each meta-fact; empty sets delete the
    /// meta-fact) and append the MORE facts.
    pub fn instantiate(&self, phi: &Assignment) -> FactSet {
        let mut facts = Vec::new();
        for p in &self.sat_patterns {
            let subjects: Vec<AValue> = match &p.subject {
                QlTerm::Var(v) => phi.values(self.var_index[v]).to_vec(),
                QlTerm::Element(e) => vec![AValue::Elem(*e)],
            };
            let relations: Vec<AValue> = match &p.relation {
                QlRel::Var(v) => phi.values(self.var_index[v]).to_vec(),
                QlRel::Relation(r) => vec![AValue::Rel(*r)],
            };
            let objects: Vec<AValue> = match &p.object {
                QlTerm::Var(v) => phi.values(self.var_index[v]).to_vec(),
                QlTerm::Element(e) => vec![AValue::Elem(*e)],
            };
            for s in &subjects {
                for r in &relations {
                    for o in &objects {
                        if let (AValue::Elem(s), AValue::Rel(r), AValue::Elem(o)) = (s, r, o) {
                            facts.push(Fact::new(*s, *r, *o));
                        }
                    }
                }
            }
        }
        facts.extend_from_slice(phi.more_facts());
        FactSet::from_facts(facts)
    }

    /// The base valid assignments (one per WHERE binding projected onto the
    /// bound variables; free variables left empty), up to `limit`. Used to
    /// seed MORE-fact discovery: their instantiations are the concrete
    /// "when you do X..." contexts members can be prompted about.
    pub fn base_assignments(&self, limit: usize) -> Vec<Assignment> {
        let vocab = self.ontology.vocabulary();
        self.base_tuples
            .iter()
            .take(limit)
            .map(|t| {
                let mut sets: Vec<Vec<AValue>> = vec![Vec::new(); self.nvars()];
                for (bpos, &i) in self.bound_positions.iter().enumerate() {
                    sets[i] = vec![t[bpos]];
                }
                Assignment::from_sets(sets, vocab)
            })
            .collect()
    }

    /// Enumerate all single-valued assignments of `𝒜` over the bound
    /// variables (free variables and MORE excluded): the paper's "DAG
    /// without multiplicities". Returns `None` if `cap` is exceeded.
    pub fn enumerate_single_valued(&self, cap: usize) -> Option<Vec<Assignment>> {
        if self.kinds.iter().any(|k| *k != VarKind::Bound) {
            // Free variables make the single-valued closure the full
            // cross-product with the vocabulary; callers should restrict to
            // bound-only queries (all synthetic experiments do).
            return None;
        }
        let vocab = self.ontology.vocabulary();
        let mut seen: HashSet<Assignment> = HashSet::new();
        let mut queue: Vec<Assignment> = Vec::new();
        for t in &self.base_tuples {
            let a = Assignment::single_valued(t.iter().copied());
            if seen.insert(a.clone()) {
                queue.push(a);
            }
        }
        while let Some(a) = queue.pop() {
            if seen.len() > cap {
                return None;
            }
            for x in 0..self.nvars() {
                let v = a.values(x)[0];
                for p in self.parents_of(x, v) {
                    let cand = a.with_values(x, vec![p], vocab);
                    if seen.insert(cand.clone()) {
                        queue.push(cand);
                    }
                }
            }
        }
        let mut v: Vec<Assignment> = seen.into_iter().collect();
        v.sort();
        Some(v)
    }

    /// Total number of assignment-DAG nodes, counted by exhaustive
    /// traversal from [`Self::roots`] through [`Self::successors`].
    /// Returns `None` once more than `cap` distinct nodes have been
    /// materialized: the space can be astronomically large, and callers
    /// (the `engine.dag.nodes_total` observability gauge, eager baselines
    /// in the bench experiments) only want the count when it is small
    /// enough to be meaningful.
    pub fn count_nodes_up_to(&self, cap: usize) -> Option<usize> {
        let mut seen: HashSet<Assignment> = HashSet::new();
        let mut queue: Vec<Assignment> = Vec::new();
        for r in self.roots() {
            if seen.insert(r.clone()) {
                queue.push(r);
            }
        }
        while let Some(a) = queue.pop() {
            if seen.len() > cap {
                return None;
            }
            for s in self.successors(&a) {
                if seen.insert(s.clone()) {
                    queue.push(s);
                }
            }
        }
        Some(seen.len())
    }
}

/// Interned handle of one assignment in a [`SpaceCache`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

/// Memoized derivations for one interned assignment.
#[derive(Debug, Default)]
struct NodeEntry {
    succs: Option<Arc<Vec<Assignment>>>,
    preds: Option<Arc<Vec<Assignment>>>,
    valid: Option<bool>,
    inst: Option<Arc<FactSet>>,
}

#[derive(Debug)]
struct CacheInner {
    ids: HashMap<Assignment, NodeId>,
    nodes: Vec<NodeEntry>,
    /// The assignment interned in each arena slot (reverse of `ids`),
    /// needed to unmap a slot when the clock hand reclaims it.
    keys: Vec<Assignment>,
    capacity: usize,
    /// Clock hand: the next slot to reclaim once the arena is full.
    victim: usize,
}

impl CacheInner {
    fn with_capacity(capacity: usize) -> Self {
        CacheInner {
            ids: HashMap::new(),
            nodes: Vec::new(),
            keys: Vec::new(),
            capacity: capacity.max(1),
            victim: 0,
        }
    }

    /// Intern `phi`. Once the arena is at capacity, the clock-hand victim
    /// slot is reclaimed (its memoized derivations are recomputed on the
    /// next visit). Returns the id and whether an entry was evicted.
    fn intern(&mut self, phi: &Assignment) -> (NodeId, bool) {
        if let Some(&id) = self.ids.get(phi) {
            return (id, false);
        }
        if self.nodes.len() < self.capacity {
            let id = NodeId(self.nodes.len() as u32);
            self.ids.insert(phi.clone(), id);
            self.keys.push(phi.clone());
            self.nodes.push(NodeEntry::default());
            return (id, false);
        }
        let v = self.victim;
        self.victim = (v + 1) % self.capacity;
        self.ids.remove(&self.keys[v]);
        self.keys[v] = phi.clone();
        self.nodes[v] = NodeEntry::default();
        let id = NodeId(v as u32);
        self.ids.insert(phi.clone(), id);
        (id, true)
    }
}

/// Default cap on interned nodes (overridable via
/// [`EngineConfig::builder().space_cache_capacity(..)`](crate::EngineConfig)).
/// Chosen above the engine's own DAG-materialization cap so a normal run
/// never evicts, while a pathological space cannot exhaust memory.
const SPACE_CACHE_NODE_CAP: usize = 1 << 16;

/// An interning memo layer over one [`AssignSpace`]'s derivation calls.
///
/// The miners revisit the same DAG nodes constantly — every `find_askable`
/// walk re-descends from the roots, and each visit used to re-derive and
/// re-clone fresh `Vec<Assignment>`s. The cache interns assignments into an
/// arena of [`NodeId`]s and memoizes `successors` / `predecessors` /
/// `is_valid` / `instantiate` per node, handing out `Arc` clones of the
/// first-computed result.
///
/// Because the underlying derivations are deterministic (results are sorted
/// before return), memoization is observationally invisible: callers see
/// exactly the vectors they would have derived, in the same order. A
/// [`disabled`](Self::disabled) cache forwards every call — the benchmark
/// baseline. Hits and misses are reported on `space.cache.hit/miss`,
/// labeled by operation.
#[derive(Debug)]
pub struct SpaceCache {
    enabled: bool,
    sink: Arc<dyn EventSink>,
    inner: Mutex<CacheInner>,
}

impl Default for SpaceCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SpaceCache {
    /// An enabled cache with no instrumentation.
    pub fn new() -> Self {
        Self::with_sink(null_sink())
    }

    /// An enabled cache reporting hit/miss counters to `sink`.
    pub fn with_sink(sink: Arc<dyn EventSink>) -> Self {
        Self::with_capacity(SPACE_CACHE_NODE_CAP, sink)
    }

    /// An enabled cache holding at most `capacity` interned nodes (clamped
    /// to at least 1). Past capacity the clock hand reclaims slots, counted
    /// on `space.cache.evicted`.
    pub fn with_capacity(capacity: usize, sink: Arc<dyn EventSink>) -> Self {
        SpaceCache {
            enabled: true,
            sink,
            inner: Mutex::new(CacheInner::with_capacity(capacity)),
        }
    }

    /// A pass-through cache: every call forwards to the space, nothing is
    /// stored. Used as the un-indexed benchmark baseline.
    pub fn disabled() -> Self {
        SpaceCache {
            enabled: false,
            sink: null_sink(),
            inner: Mutex::new(CacheInner::with_capacity(SPACE_CACHE_NODE_CAP)),
        }
    }

    /// Whether memoization is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of interned assignments.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("space cache poisoned").nodes.len()
    }

    /// Whether no assignment has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern `phi` into the arena (no derivation); `None` only when the
    /// cache is disabled.
    pub fn intern(&self, phi: &Assignment) -> Option<NodeId> {
        if !self.enabled {
            return None;
        }
        let mut inner = self.inner.lock().expect("space cache poisoned");
        Some(self.intern_counted(&mut inner, phi))
    }

    /// Intern through `inner`, reporting any eviction to the sink.
    fn intern_counted(&self, inner: &mut CacheInner, phi: &Assignment) -> NodeId {
        let (id, evicted) = inner.intern(phi);
        if evicted {
            self.sink.count(names::SPACE_CACHE_EVICTED, 1);
        }
        id
    }

    fn counted<T, F: FnOnce() -> T>(&self, op: &str, hit: bool, f: F) -> T {
        self.sink.count_labeled(
            if hit {
                names::SPACE_CACHE_HIT
            } else {
                names::SPACE_CACHE_MISS
            },
            op,
            1,
        );
        f()
    }

    /// Memoized [`AssignSpace::successors`].
    pub fn successors(&self, space: &AssignSpace, phi: &Assignment) -> Arc<Vec<Assignment>> {
        if !self.enabled {
            return Arc::new(space.successors(phi));
        }
        let mut inner = self.inner.lock().expect("space cache poisoned");
        let id = self.intern_counted(&mut inner, phi);
        if let Some(s) = &inner.nodes[id.0 as usize].succs {
            let s = Arc::clone(s);
            return self.counted("successors", true, || s);
        }
        let computed = Arc::new(space.successors(phi));
        inner.nodes[id.0 as usize].succs = Some(Arc::clone(&computed));
        self.counted("successors", false, || computed)
    }

    /// Memoized [`AssignSpace::predecessors`].
    pub fn predecessors(&self, space: &AssignSpace, phi: &Assignment) -> Arc<Vec<Assignment>> {
        if !self.enabled {
            return Arc::new(space.predecessors(phi));
        }
        let mut inner = self.inner.lock().expect("space cache poisoned");
        let id = self.intern_counted(&mut inner, phi);
        if let Some(p) = &inner.nodes[id.0 as usize].preds {
            let p = Arc::clone(p);
            return self.counted("predecessors", true, || p);
        }
        let computed = Arc::new(space.predecessors(phi));
        inner.nodes[id.0 as usize].preds = Some(Arc::clone(&computed));
        self.counted("predecessors", false, || computed)
    }

    /// Memoized [`AssignSpace::is_valid`].
    pub fn is_valid(&self, space: &AssignSpace, phi: &Assignment) -> bool {
        if !self.enabled {
            return space.is_valid(phi);
        }
        let mut inner = self.inner.lock().expect("space cache poisoned");
        let id = self.intern_counted(&mut inner, phi);
        if let Some(v) = inner.nodes[id.0 as usize].valid {
            return self.counted("valid", true, || v);
        }
        let computed = space.is_valid(phi);
        inner.nodes[id.0 as usize].valid = Some(computed);
        self.counted("valid", false, || computed)
    }

    /// Memoized [`AssignSpace::instantiate`].
    pub fn instantiate(&self, space: &AssignSpace, phi: &Assignment) -> Arc<FactSet> {
        if !self.enabled {
            return Arc::new(space.instantiate(phi));
        }
        let mut inner = self.inner.lock().expect("space cache poisoned");
        let id = self.intern_counted(&mut inner, phi);
        if let Some(f) = &inner.nodes[id.0 as usize].inst {
            let f = Arc::clone(f);
            return self.counted("instantiate", true, || f);
        }
        let computed = Arc::new(space.instantiate(phi));
        inner.nodes[id.0 as usize].inst = Some(Arc::clone(&computed));
        self.counted("instantiate", false, || computed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_ql::parse_query;
    use oassis_store::ontology::figure1_ontology;

    /// The grey-highlighted fragment of the running example that Figure 3
    /// illustrates: attractions in NYC and activities done there.
    const FIG3_QUERY: &str = r#"
        SELECT FACT-SETS
        WHERE
          $w subClassOf* Attraction.
          $x instanceOf $w.
          $x inside NYC.
          $x hasLabel "child-friendly".
          $y subClassOf* Activity
        SATISFYING
          $y+ doAt $x
        WITH SUPPORT = 0.4
    "#;

    fn fig3_space() -> AssignSpace {
        let o = Arc::new(figure1_ontology());
        let q = parse_query(FIG3_QUERY, &o).unwrap();
        AssignSpace::build(o, &q, MatchMode::Semantic, Vec::new()).unwrap()
    }

    fn val(space: &AssignSpace, name: &str) -> AValue {
        AValue::Elem(space.ontology().vocabulary().element(name).unwrap())
    }

    /// Assignment over (y, x) — note the sat-var order is first-use order:
    /// $y appears before $x in `$y+ doAt $x`.
    fn assign(space: &AssignSpace, y: &str, x: &str) -> Assignment {
        Assignment::single_valued([val(space, y), val(space, x)])
    }

    #[test]
    fn sat_var_order_and_kinds() {
        let s = fig3_space();
        assert_eq!(s.var_names(), &["y".to_owned(), "x".to_owned()]);
        assert_eq!(s.kind(0), VarKind::Bound);
        assert_eq!(s.kind(1), VarKind::Bound);
        assert!(s.base_count() > 0);
    }

    #[test]
    fn validity_matches_figure3() {
        let s = fig3_space();
        // Node 16: (Biking, Central Park) — valid.
        assert!(s.is_valid(&assign(&s, "Biking", "Central Park")));
        // Node 15: (Sport, Central Park) — valid (Sport subClassOf* Activity).
        assert!(s.is_valid(&assign(&s, "Sport", "Central Park")));
        // Node 7 style: (Sport, Park) — x must be an instance ⇒ invalid,
        // but still in 𝒜 (a generalization of node 15).
        let n7 = assign(&s, "Sport", "Park");
        assert!(!s.is_valid(&n7));
        assert!(s.in_space(&n7));
        // (Pasta, Central Park): Pasta is not an Activity ⇒ not even in 𝒜.
        let bad = assign(&s, "Pasta", "Central Park");
        assert!(!s.in_space(&bad));
        assert!(!s.is_valid(&bad));
    }

    #[test]
    fn multiplicity_validity() {
        let s = fig3_space();
        let vocab = s.ontology().vocabulary().clone();
        // {Biking, Ball Game} at Central Park (node 18): valid for $y+.
        let n18 = Assignment::from_sets(
            vec![
                vec![val(&s, "Biking"), val(&s, "Ball Game")],
                vec![val(&s, "Central Park")],
            ],
            &vocab,
        );
        assert!(s.is_valid(&n18), "multiplicity-2 combination is valid");
        assert!(s.in_space(&n18));
        // Empty $y is not admitted by `+`.
        let empty_y = Assignment::from_sets(vec![vec![], vec![val(&s, "Central Park")]], &vocab);
        assert!(!s.is_valid(&empty_y));
        assert!(s.in_space(&empty_y), "but it is a generalization");
    }

    #[test]
    fn roots_are_most_general() {
        let s = fig3_space();
        let roots = s.roots();
        assert!(!roots.is_empty());
        for r in &roots {
            assert!(s.in_space(r));
            for p in s.predecessors(r) {
                assert!(
                    !s.in_space(&p) || !p.lt(r, s.ontology().vocabulary()),
                    "root {r} has a predecessor {p} in 𝒜"
                );
            }
        }
        // The Figure 3 root (Activity, Attraction) — in sat-var order (y, x).
        let expected = assign(&s, "Activity", "Attraction");
        assert!(roots.contains(&expected), "roots: {roots:?}");
    }

    #[test]
    fn successors_specialize_one_step() {
        let s = fig3_space();
        let root = assign(&s, "Activity", "Attraction");
        let succs = s.successors(&root);
        assert!(succs.contains(&assign(&s, "Sport", "Attraction")));
        assert!(succs.contains(&assign(&s, "Activity", "Outdoor")));
        // Two steps away — not immediate.
        assert!(!succs.contains(&assign(&s, "Biking", "Attraction")));
        for su in &succs {
            assert!(root.lt(su, s.ontology().vocabulary()));
            assert!(s.in_space(su));
        }
    }

    #[test]
    fn successors_include_multiplicity_combinations() {
        let s = fig3_space();
        let vocab = s.ontology().vocabulary().clone();
        let n16 = assign(&s, "Biking", "Central Park");
        let succs = s.successors(&n16);
        // Node 18 = {Biking, Ball Game} is an immediate successor of 16
        // (adding Ball Game: its parent Sport collides with Biking).
        let n18 = Assignment::from_sets(
            vec![
                vec![val(&s, "Biking"), val(&s, "Ball Game")],
                vec![val(&s, "Central Park")],
            ],
            &vocab,
        );
        assert!(succs.contains(&n18), "succs: {succs:?}");
        // But not {Biking, Basketball} directly (Ball Game lies between).
        let skip = Assignment::from_sets(
            vec![
                vec![val(&s, "Biking"), val(&s, "Basketball")],
                vec![val(&s, "Central Park")],
            ],
            &vocab,
        );
        assert!(!succs.contains(&skip));
    }

    #[test]
    fn predecessors_invert_successors() {
        let s = fig3_space();
        let node = assign(&s, "Sport", "Park");
        for su in s.successors(&node) {
            assert!(
                s.predecessors(&su).contains(&node),
                "{node} should be a predecessor of {su}"
            );
        }
        let preds = s.predecessors(&node);
        assert!(preds.contains(&assign(&s, "Activity", "Park")));
        assert!(preds.contains(&assign(&s, "Sport", "Outdoor")));
    }

    #[test]
    fn multiplicity_node_predecessors_drop_or_generalize() {
        let s = fig3_space();
        let vocab = s.ontology().vocabulary().clone();
        let n18 = Assignment::from_sets(
            vec![
                vec![val(&s, "Biking"), val(&s, "Ball Game")],
                vec![val(&s, "Central Park")],
            ],
            &vocab,
        );
        let preds = s.predecessors(&n18);
        // Generalizing Biking → Sport absorbs into Ball Game? No: Sport ≤
        // Ball Game, so {Sport, Ball Game} canonicalizes to {Ball Game} = 17.
        assert!(preds.contains(&assign(&s, "Ball Game", "Central Park")));
        // Generalizing Ball Game → Sport absorbs Biking's side similarly.
        assert!(preds.contains(&assign(&s, "Biking", "Central Park")));
    }

    #[test]
    fn instantiate_cross_product_and_more() {
        let s = fig3_space();
        let vocab = s.ontology().vocabulary().clone();
        let n18 = Assignment::from_sets(
            vec![
                vec![val(&s, "Biking"), val(&s, "Ball Game")],
                vec![val(&s, "Central Park")],
            ],
            &vocab,
        );
        let fs = s.instantiate(&n18);
        assert_eq!(fs.len(), 2, "{fs}");
        let rendered = vocab.factset_to_string(&fs);
        assert!(rendered.contains("Biking doAt Central Park"));
        assert!(rendered.contains("Ball Game doAt Central Park"));

        let rent = Fact::new(
            vocab.element("Rent Bikes").unwrap(),
            vocab.relation("doAt").unwrap(),
            vocab.element("Boathouse").unwrap(),
        );
        let with_more = n18.with_more_fact(rent);
        let fs2 = s.instantiate(&with_more);
        assert_eq!(fs2.len(), 3);
    }

    #[test]
    fn empty_set_deletes_meta_fact() {
        let s = fig3_space();
        let vocab = s.ontology().vocabulary().clone();
        let empty_y = Assignment::from_sets(vec![vec![], vec![val(&s, "Central Park")]], &vocab);
        assert!(s.instantiate(&empty_y).is_empty());
    }

    #[test]
    fn enumerate_single_valued_closure() {
        let s = fig3_space();
        let all = s.enumerate_single_valued(100_000).unwrap();
        assert!(!all.is_empty());
        // Every enumerated node is in 𝒜, single-valued, and the base valid
        // assignments are included.
        for a in &all {
            assert!(a.is_single_valued());
            assert!(s.in_space(a));
        }
        assert!(all.contains(&assign(&s, "Biking", "Central Park")));
        assert!(all.contains(&assign(&s, "Activity", "Attraction")));
        // Closed under predecessors.
        for a in all.iter().take(50) {
            for p in s.predecessors(a) {
                if p.is_single_valued() {
                    assert!(all.contains(&p), "missing predecessor {p} of {a}");
                }
            }
        }
    }

    #[test]
    fn free_variable_space() {
        let o = Arc::new(figure1_ontology());
        let q = parse_query(
            "SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 0.1",
            &o,
        )
        .unwrap();
        let s = AssignSpace::build(Arc::clone(&o), &q, MatchMode::Semantic, Vec::new()).unwrap();
        assert_eq!(s.kind(0), VarKind::FreeElem);
        assert_eq!(s.kind(1), VarKind::FreeRel);
        assert_eq!(s.kind(2), VarKind::FreeElem);
        // Everything is in 𝒜 and single-valued assignments are valid.
        let thing = AValue::Elem(o.vocabulary().element("Thing").unwrap());
        let do_at = AValue::Rel(o.vocabulary().relation("doAt").unwrap());
        let cp = AValue::Elem(o.vocabulary().element("Central Park").unwrap());
        let a = Assignment::single_valued([thing, do_at, cp]);
        assert!(s.in_space(&a));
        assert!(s.is_valid(&a));
        assert!(
            s.enumerate_single_valued(1000).is_none(),
            "free vars refuse enumeration"
        );
        assert!(!s.roots().is_empty());
    }

    #[test]
    fn planner_and_reference_build_identical_spaces() {
        let o = Arc::new(figure1_ontology());
        let q = parse_query(FIG3_QUERY, &o).unwrap();
        for mode in [MatchMode::Syntactic, MatchMode::Semantic] {
            let planned = AssignSpace::build_with_planner(
                Arc::clone(&o),
                &q,
                mode,
                Vec::new(),
                &null_sink(),
                true,
            )
            .unwrap();
            let reference = AssignSpace::build_with_planner(
                Arc::clone(&o),
                &q,
                mode,
                Vec::new(),
                &null_sink(),
                false,
            )
            .unwrap();
            assert_eq!(planned.base_count(), reference.base_count(), "{mode:?}");
            assert_eq!(planned.base_tuples, reference.base_tuples, "{mode:?}");
            assert_eq!(planned.roots(), reference.roots(), "{mode:?}");
        }
    }

    #[test]
    fn filtered_where_narrows_the_space() {
        let o = Arc::new(figure1_ontology());
        let base = parse_query(FIG3_QUERY, &o).unwrap();
        let filtered = parse_query(
            r#"
            SELECT FACT-SETS
            WHERE
              $w subClassOf* Attraction.
              $x instanceOf $w.
              $x inside NYC.
              $x hasLabel "child-friendly".
              $y subClassOf* Activity.
              FILTER($x IN (<Central Park>))
            SATISFYING
              $y+ doAt $x
            WITH SUPPORT = 0.4
            "#,
            &o,
        )
        .unwrap();
        let s_base =
            AssignSpace::build(Arc::clone(&o), &base, MatchMode::Semantic, Vec::new()).unwrap();
        let s_filt =
            AssignSpace::build(Arc::clone(&o), &filtered, MatchMode::Semantic, Vec::new()).unwrap();
        assert!(s_filt.base_count() < s_base.base_count());
        assert!(s_filt.base_count() > 0);
        // The filtered space only mentions Central Park on the $x side.
        let cp = val(&s_filt, "Central Park");
        for t in &s_filt.base_tuples {
            assert_eq!(t[1], cp);
        }
    }

    #[test]
    fn mixed_var_use_is_rejected() {
        let o = Arc::new(figure1_ontology());
        let q = parse_query(
            "SELECT FACT-SETS WHERE SATISFYING $x doAt $y. $y $x $z WITH SUPPORT = 0.1",
            &o,
        )
        .unwrap();
        assert!(matches!(
            AssignSpace::build(o, &q, MatchMode::Semantic, Vec::new()),
            Err(SpaceError::MixedVarUse(_))
        ));
    }

    #[test]
    fn space_cache_matches_direct_derivation() {
        let s = fig3_space();
        let cache = SpaceCache::new();
        let root = assign(&s, "Activity", "Attraction");
        let direct = s.successors(&root);
        let first = cache.successors(&s, &root);
        let second = cache.successors(&s, &root);
        assert_eq!(*first, direct);
        assert!(Arc::ptr_eq(&first, &second), "second call hits the memo");
        assert_eq!(cache.is_valid(&s, &root), s.is_valid(&root));
        assert_eq!(cache.is_valid(&s, &root), s.is_valid(&root), "memo hit");
        assert_eq!(*cache.predecessors(&s, &root), s.predecessors(&root));
        assert_eq!(*cache.instantiate(&s, &root), s.instantiate(&root));
        assert!(!cache.is_empty());
        assert_eq!(cache.intern(&root), cache.intern(&root), "stable NodeId");

        let off = SpaceCache::disabled();
        assert!(!off.is_enabled());
        assert_eq!(*off.successors(&s, &root), direct);
        assert!(off.intern(&root).is_none());
        assert!(off.is_empty());
    }

    #[test]
    fn space_cache_evicts_at_capacity_and_stays_correct() {
        let s = fig3_space();
        let sink = Arc::new(oassis_obs::InMemorySink::new());
        let cache = SpaceCache::with_capacity(2, Arc::clone(&sink) as Arc<dyn oassis_obs::EventSink>);
        // Three distinct nodes through a 2-slot arena forces an eviction.
        let a = assign(&s, "Activity", "Attraction");
        let b = assign(&s, "Sport", "Central Park");
        let c = assign(&s, "Biking", "Central Park");
        for phi in [&a, &b, &c, &a, &b, &c] {
            assert_eq!(*cache.successors(&s, phi), s.successors(phi));
            assert_eq!(cache.is_valid(&s, phi), s.is_valid(phi));
            assert_eq!(*cache.instantiate(&s, phi), s.instantiate(phi));
        }
        assert_eq!(cache.len(), 2, "arena never exceeds its capacity");
        let snapshot = sink.snapshot();
        let evicted = snapshot
            .counters
            .get(oassis_obs::names::SPACE_CACHE_EVICTED)
            .copied()
            .unwrap_or(0);
        assert!(evicted > 0, "evictions are counted: {snapshot:?}");
    }

    #[test]
    fn more_facts_generate_successors() {
        let o = Arc::new(figure1_ontology());
        let vocab = o.vocabulary().clone();
        let rent = Fact::new(
            vocab.element("Rent Bikes").unwrap(),
            vocab.relation("doAt").unwrap(),
            vocab.element("Boathouse").unwrap(),
        );
        let q = parse_query(
            r#"SELECT FACT-SETS
               WHERE $y subClassOf* Activity
               SATISFYING $y doAt <Central Park>. MORE
               WITH SUPPORT = 0.4"#,
            &o,
        )
        .unwrap();
        let s = AssignSpace::build(Arc::clone(&o), &q, MatchMode::Semantic, vec![rent]).unwrap();
        let biking = Assignment::single_valued([AValue::Elem(vocab.element("Biking").unwrap())]);
        let succs = s.successors(&biking);
        assert!(succs.iter().any(|a| a.more_facts() == [rent]));
        // And validity allows MORE facts.
        let with_more = biking.with_more_fact(rent);
        assert!(s.is_valid(&with_more));
        // Dropping the MORE fact is a predecessor.
        assert!(s.predecessors(&with_more).contains(&biking));
    }
}
