//! The three application domains of the real-crowd experiments (§6.3).
//!
//! Each domain is a generated ontology (the paper combined WordNet, YAGO and
//! Foursquare; we synthesize taxonomies with the same shape) plus the
//! canonical OASSIS-QL query the experiments execute. The generators are
//! sized so that the query's assignment DAG node count approximates the
//! paper's: travel ≈ 4773, culinary ≈ 10512, self-treatment ≈ 2307 (all
//! "without multiplicities").

use oassis_store::{Ontology, OntologyBuilder};

/// A generated experiment domain.
#[derive(Debug)]
pub struct Domain {
    /// Domain name ("travel", "culinary", "self-treatment").
    pub name: &'static str,
    /// The generated ontology.
    pub ontology: Ontology,
    /// The canonical query of the paper's experiments for this domain.
    pub query: String,
    /// Leaf-level subject values (for crowd generation).
    pub subject_leaves: Vec<String>,
    /// Leaf-level object values (instances or leaf classes).
    pub object_leaves: Vec<String>,
    /// The relation joining subjects to objects in the SATISFYING clause.
    pub relation: &'static str,
}

/// Build a class taxonomy under `root`: `branches` children, each expanded
/// `depth` more levels with `fanout` children per node. Returns leaf names.
fn build_tree(
    b: &mut OntologyBuilder,
    root: &str,
    prefix: &str,
    branches: usize,
    depth: usize,
    fanout: usize,
) -> Vec<String> {
    let mut leaves = Vec::new();
    let mut frontier: Vec<String> = Vec::new();
    for i in 0..branches {
        let name = format!("{prefix}-{i}");
        b.subclass(&name, root);
        frontier.push(name);
    }
    for level in 0..depth {
        let mut next = Vec::new();
        for parent in &frontier {
            for j in 0..fanout {
                let name = format!("{parent}.{j}");
                b.subclass(&name, parent);
                next.push(name);
            }
        }
        if level + 1 == depth {
            leaves = next.clone();
        }
        frontier = next;
    }
    if depth == 0 {
        leaves = frontier;
    }
    leaves
}

/// The travel-recommendation domain: activities done at child-friendly
/// attractions of a city, instances required for the attraction (which is
/// why some discovered MSPs are *invalid* — they generalize the instance to
/// a class, exactly the situation §6.3 describes for the travel query).
pub fn travel_domain() -> Domain {
    // 4 + 20 + 100 Activity classes, 12 Attraction classes — the DAG lands
    // near the paper's 4773 nodes.
    travel_domain_sized("travel", 4, 5, 4, 2)
}

/// A ~10× travel-shaped domain for the `scale` benchmark: the same query
/// and structure as [`travel_domain`], with wider taxonomies (8 + 56 + 392
/// Activity classes, 18 Attraction leaf classes ⇒ 36 labeled venues). The
/// assignment DAG grows to roughly 8–10× the paper-sized travel DAG.
pub fn travel_domain_10x() -> Domain {
    travel_domain_sized("travel-10x", 8, 7, 6, 3)
}

/// Travel-shaped domain generator behind [`travel_domain`] and
/// [`travel_domain_10x`]; taxonomy widths are the scaling knobs.
fn travel_domain_sized(
    name: &'static str,
    act_branches: usize,
    act_fanout: usize,
    attr_branches: usize,
    attr_fanout: usize,
) -> Domain {
    let mut b = Ontology::builder();
    // Subject taxonomy: Activity, 2 levels below the branch roots.
    let subject_leaves = build_tree(&mut b, "Activity", "Act", act_branches, 2, act_fanout);
    // Object taxonomy: Attraction, 1 level; instances per leaf class,
    // labeled and inside the city.
    let object_classes = build_tree(&mut b, "Attraction", "AttrCat", attr_branches, 1, attr_fanout);
    b.element("Tel Aviv");
    let mut object_leaves = Vec::new();
    for (i, class) in object_classes.iter().enumerate() {
        for k in 0..3 {
            let inst = format!("Venue-{i}-{k}");
            b.instance(&inst, class);
            b.triple(&inst, "inside", "Tel Aviv");
            if k < 2 {
                b.label(&inst, "child-friendly");
            }
            if k < 2 {
                object_leaves.push(inst);
            }
        }
    }
    b.relation("doAt");
    b.relation_isa("instanceOf", "subClassOf");
    let ontology = b.build().expect("travel domain is well-formed");
    let query = r#"
        SELECT FACT-SETS
        WHERE
          $w subClassOf* Attraction.
          $x instanceOf $w.
          $x inside <Tel Aviv>.
          $x hasLabel "child-friendly".
          $y subClassOf* Activity
        SATISFYING
          $y+ doAt $x
        WITH SUPPORT = 0.2
    "#
    .to_owned();
    Domain {
        name,
        ontology,
        query,
        subject_leaves,
        object_leaves,
        relation: "doAt",
    }
}

/// The culinary-preferences domain: popular combinations of dishes and
/// drinks. Class-level query, so *all* MSPs are valid (§6.3). This is the
/// largest DAG of the three (≈ 10512 nodes).
pub fn culinary_domain() -> Domain {
    let mut b = Ontology::builder();
    // Dishes: 5 branches × 2 levels × fanout 4 ⇒ 5 + 20 + 80 = 105 classes.
    let subject_leaves = build_tree(&mut b, "Dish", "Dish", 5, 2, 4);
    // Drinks: 4 branches × 2 levels × fanout 4 ⇒ 4 + 16 + 64 = 84 classes.
    let object_leaves = build_tree(&mut b, "Drink", "Drink", 4, 2, 4);
    b.relation("consumedWith");
    b.relation_isa("instanceOf", "subClassOf");
    let ontology = b.build().expect("culinary domain is well-formed");
    let query = r#"
        SELECT FACT-SETS
        WHERE
          $d subClassOf* Dish.
          $k subClassOf* Drink
        SATISFYING
          $d+ consumedWith $k
        WITH SUPPORT = 0.2
    "#
    .to_owned();
    Domain {
        name: "culinary",
        ontology,
        query,
        subject_leaves,
        object_leaves,
        relation: "consumedWith",
    }
}

/// The self-treatment domain: what people take to relieve common illness
/// symptoms. The smallest DAG (≈ 2307 nodes); class-level query.
pub fn self_treatment_domain() -> Domain {
    let mut b = Ontology::builder();
    // Remedies: 4 branches × 1 level × fanout 6 ⇒ 4 + 24 = 28... plus a
    // second expansion to land near 59 subject values.
    let subject_leaves = build_tree(&mut b, "Remedy", "Remedy", 6, 1, 8);
    // Symptoms: 4 branches × 1 level × fanout 7 ⇒ 32 + root closure.
    let object_leaves = build_tree(&mut b, "Symptom", "Symptom", 4, 1, 7);
    b.relation("takenFor");
    b.relation_isa("instanceOf", "subClassOf");
    let ontology = b.build().expect("self-treatment domain is well-formed");
    let query = r#"
        SELECT FACT-SETS
        WHERE
          $r subClassOf* Remedy.
          $s subClassOf* Symptom
        SATISFYING
          $r takenFor $s
        WITH SUPPORT = 0.2
    "#
    .to_owned();
    Domain {
        name: "self-treatment",
        ontology,
        query,
        subject_leaves,
        object_leaves,
        relation: "takenFor",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_core::AssignSpace;
    use oassis_ql::parse_query;
    use oassis_sparql::MatchMode;
    use std::sync::Arc;

    fn dag_size(domain: &Domain) -> usize {
        let q = parse_query(&domain.query, &domain.ontology).unwrap();
        let space = AssignSpace::build(
            Arc::new(domain.ontology.clone()),
            &q,
            MatchMode::Semantic,
            Vec::new(),
        )
        .unwrap();
        space
            .enumerate_single_valued(1_000_000)
            .expect("bound-only query")
            .len()
    }

    #[test]
    fn travel_dag_size_matches_paper_scale() {
        // Paper: 4773 nodes. Accept ±25%.
        let d = travel_domain();
        let n = dag_size(&d);
        assert!((3600..=6000).contains(&n), "travel DAG has {n} nodes");
    }

    #[test]
    fn culinary_dag_size_matches_paper_scale() {
        // Paper: 10512 nodes.
        let d = culinary_domain();
        let n = dag_size(&d);
        assert!((8000..=13000).contains(&n), "culinary DAG has {n} nodes");
    }

    #[test]
    fn self_treatment_dag_size_matches_paper_scale() {
        // Paper: 2307 nodes.
        let d = self_treatment_domain();
        let n = dag_size(&d);
        assert!(
            (1700..=2900).contains(&n),
            "self-treatment DAG has {n} nodes"
        );
    }

    #[test]
    fn travel_10x_is_roughly_ten_times_travel() {
        // Structural check only: the DAG-node ratio is verified by the
        // `scale` benchmark (enumerating the 10× DAG is too slow for a
        // debug-mode unit test).
        let base = travel_domain();
        let big = travel_domain_10x();
        assert_eq!(big.name, "travel-10x");
        let ratio = (big.subject_leaves.len() * big.object_leaves.len()) as f64
            / (base.subject_leaves.len() * base.object_leaves.len()) as f64;
        assert!(
            (6.0..=14.0).contains(&ratio),
            "leaf-pair ratio {ratio:.1} should be near 10x"
        );
    }

    #[test]
    fn queries_parse_against_their_ontologies() {
        for d in [
            travel_domain(),
            travel_domain_10x(),
            culinary_domain(),
            self_treatment_domain(),
        ] {
            let q = parse_query(&d.query, &d.ontology);
            assert!(q.is_ok(), "{}: {:?}", d.name, q.err());
            assert!(!d.subject_leaves.is_empty());
            assert!(!d.object_leaves.is_empty());
        }
    }

    #[test]
    fn travel_objects_are_labeled_instances() {
        let d = travel_domain();
        let v = d.ontology.vocabulary();
        for leaf in &d.object_leaves {
            let e = v.element(leaf).unwrap();
            assert!(d.ontology.element_has_label(e, "child-friendly"), "{leaf}");
        }
    }
}

impl Domain {
    /// Natural-language question templates for this domain (§6.2: templates
    /// are "domain-specific, and can be manually created in advance").
    pub fn question_templates(&self) -> oassis_core::question::QuestionTemplates {
        let v = self.ontology.vocabulary();
        let mut t = oassis_core::question::QuestionTemplates::new();
        match self.name {
            n if n.starts_with("travel") => {
                if let Some(r) = v.relation("doAt") {
                    t.set(r, "do {s} at {o}");
                }
            }
            "culinary" => {
                if let Some(r) = v.relation("consumedWith") {
                    t.set(r, "have {s} together with {o}");
                }
            }
            "self-treatment" => {
                if let Some(r) = v.relation("takenFor") {
                    t.set(r, "take {s} to relieve {o}");
                }
            }
            _ => {}
        }
        t
    }
}

#[cfg(test)]
mod template_tests {
    use super::*;
    use oassis_vocab::{Fact, FactSet};

    #[test]
    fn each_domain_renders_its_own_phrasing() {
        for (domain, needle) in [
            (travel_domain(), "do "),
            (culinary_domain(), "together with"),
            (self_treatment_domain(), "to relieve"),
        ] {
            let v = domain.ontology.vocabulary();
            let t = domain.question_templates();
            let s = v.element(&domain.subject_leaves[0]).unwrap();
            let o = v.element(&domain.object_leaves[0]).unwrap();
            let r = v.relation(domain.relation).unwrap();
            let q = t.concrete(&FactSet::from_facts([Fact::new(s, r, o)]), v);
            assert!(q.contains(needle), "{}: {q}", domain.name);
            assert!(q.starts_with("How often do you"), "{q}");
        }
    }
}
