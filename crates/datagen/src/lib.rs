#![warn(missing_docs)]

//! # oassis-datagen
//!
//! Synthetic data for the OASSIS experiments (Section 6):
//!
//! * [`domains`] — generated ontologies and canonical queries for the three
//!   application domains of the real-crowd experiments (travel
//!   recommendations, culinary preferences, self-treatment), sized so the
//!   assignment DAGs match the paper's reported node counts (≈ 4773, 10512
//!   and 2307),
//! * [`synth`] — the Section 6.4 synthetic assignment DAGs with controlled
//!   width and depth,
//! * [`plant`] — MSP planting (uniform / nearby / far distributions, with or
//!   without multiplicities) and the [`PlantedOracle`]
//!   crowd member whose answers realize exactly the planted ground truth,
//! * [`crowd_gen`] — simulated crowds whose personal transaction databases
//!   realize a chosen set of popular patterns, for the real-crowd-style
//!   figures.

pub mod crowd_gen;
pub mod domains;
pub mod plant;
pub mod synth;

pub use crowd_gen::{generate_crowd, members, CrowdGenConfig};
pub use domains::{
    culinary_domain, self_treatment_domain, travel_domain, travel_domain_10x, Domain,
};
pub use plant::{plant_msps, MspDistribution, PlantedOracle};
pub use synth::{SynthConfig, SynthInstance};
