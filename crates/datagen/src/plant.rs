//! MSP planting and the planted-answer oracle (§6.4).
//!
//! The synthetic experiments choose a ground-truth MSP set — a random
//! antichain covering a given fraction of the DAG — under three
//! distributions (uniform; *nearby*, pairwise ≤ 4 apart; *far*, pairwise
//! ≥ 6 apart), optionally including multiplicity nodes. The
//! [`PlantedOracle`] then simulates a crowd member whose supports realize
//! exactly that ground truth: a fact-set is frequent iff it is implied by a
//! planted MSP.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use oassis_core::{AssignSpace, Assignment};
use oassis_crowd::{CrowdMember, MemberId};
use oassis_vocab::{ElementId, FactSet, Vocabulary};

/// How planted MSPs are spread over the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MspDistribution {
    /// Uniform random antichain.
    Uniform,
    /// Biased towards MSPs close together (pairwise Hasse distance ≤ 4).
    Nearby,
    /// Biased towards MSPs far apart (pairwise Hasse distance ≥ 6).
    Far,
}

/// Undirected Hasse-graph ball of radius `radius` around `start`.
fn ball(space: &AssignSpace, start: &Assignment, radius: usize) -> HashMap<Assignment, usize> {
    let mut dist: HashMap<Assignment, usize> = HashMap::new();
    dist.insert(start.clone(), 0);
    let mut queue: VecDeque<Assignment> = VecDeque::new();
    queue.push_back(start.clone());
    while let Some(n) = queue.pop_front() {
        let d = dist[&n];
        if d == radius {
            continue;
        }
        for m in space
            .successors(&n)
            .into_iter()
            .chain(space.predecessors(&n))
        {
            if !dist.contains_key(&m) {
                dist.insert(m.clone(), d + 1);
                queue.push_back(m);
            }
        }
    }
    dist
}

/// Plant `count` MSPs among `candidates` (must be nodes of `space`),
/// guaranteeing the result is an antichain. May return fewer than `count`
/// when the distribution constraint runs out of room.
pub fn plant_msps(
    space: &AssignSpace,
    candidates: &[Assignment],
    count: usize,
    distribution: MspDistribution,
    seed: u64,
) -> Vec<Assignment> {
    let vocab = space.ontology().vocabulary();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pool: Vec<Assignment> = candidates.to_vec();
    pool.shuffle(&mut rng);

    let mut chosen: Vec<Assignment> = Vec::new();
    let incomparable = |a: &Assignment, chosen: &[Assignment]| {
        chosen.iter().all(|c| !a.leq(c, vocab) && !c.leq(a, vocab))
    };

    match distribution {
        MspDistribution::Uniform => {
            for a in pool {
                if chosen.len() == count {
                    break;
                }
                if incomparable(&a, &chosen) {
                    chosen.push(a);
                }
            }
        }
        MspDistribution::Nearby => {
            // Grow clusters: each new MSP within distance 4 of some chosen
            // one; start a fresh cluster when stuck.
            let mut near: HashSet<Assignment> = HashSet::new();
            let mut pool_iter = pool.into_iter();
            while chosen.len() < count {
                let next = if chosen.is_empty() || near.is_empty() {
                    pool_iter.find(|a| incomparable(a, &chosen))
                } else {
                    let mut cands: Vec<Assignment> = near
                        .iter()
                        .filter(|a| incomparable(a, &chosen))
                        .cloned()
                        .collect();
                    cands.sort();
                    if cands.is_empty() {
                        near.clear();
                        continue;
                    }
                    Some(cands.swap_remove(rng.random_range(0..cands.len())))
                };
                let Some(a) = next else { break };
                for (n, _) in ball(space, &a, 4) {
                    if n != a {
                        near.insert(n);
                    }
                }
                near.remove(&a);
                chosen.push(a);
            }
        }
        MspDistribution::Far => {
            for a in pool {
                if chosen.len() == count {
                    break;
                }
                if !incomparable(&a, &chosen) {
                    continue;
                }
                // Reject if within distance 5 of any chosen MSP.
                let near = ball(space, &a, 5);
                if chosen.iter().any(|c| near.contains_key(c)) {
                    continue;
                }
                chosen.push(a);
            }
        }
    }
    chosen
}

/// Extend a planted set with multiplicity MSPs: combination nodes of the
/// requested set `size`, built by walking value-adding successors from
/// random single-valued nodes. Returns the additional MSPs.
pub fn plant_multiplicity_msps(
    space: &AssignSpace,
    candidates: &[Assignment],
    existing: &[Assignment],
    count: usize,
    size: usize,
    seed: u64,
) -> Vec<Assignment> {
    let vocab = space.ontology().vocabulary();
    // Mix the seed so this function never shares a stream with plant_msps.
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
    let mut pool: Vec<Assignment> = candidates.to_vec();
    pool.shuffle(&mut rng);
    let mut out: Vec<Assignment> = Vec::new();
    let incomparable = |a: &Assignment, sets: &[&[Assignment]]| {
        sets.iter()
            .all(|set| set.iter().all(|c| !a.leq(c, vocab) && !c.leq(a, vocab)))
    };
    for base in pool {
        if out.len() == count {
            break;
        }
        // Grow the node by value additions until the weight reaches `size`.
        let mut node = base;
        let mut ok = true;
        while node.weight() < size {
            let adds: Vec<Assignment> = space
                .successors(&node)
                .into_iter()
                .filter(|s| s.weight() > node.weight())
                .collect();
            if adds.is_empty() {
                ok = false;
                break;
            }
            node = adds[rng.random_range(0..adds.len())].clone();
        }
        if ok && node.weight() == size && incomparable(&node, &[existing, &out]) {
            out.push(node);
        }
    }
    out
}

/// A crowd member whose answers realize a planted ground truth exactly:
/// a fact-set has support `sig_support` iff it is implied by some planted
/// MSP fact-set, else 0.
#[derive(Debug, Clone)]
pub struct PlantedOracle {
    id: MemberId,
    msp_factsets: Vec<FactSet>,
    vocab: Arc<Vocabulary>,
    sig_support: f64,
}

impl PlantedOracle {
    /// Build an oracle from planted MSP assignments.
    pub fn new(id: MemberId, space: &AssignSpace, msps: &[Assignment], sig_support: f64) -> Self {
        PlantedOracle {
            id,
            msp_factsets: msps.iter().map(|m| space.instantiate(m)).collect(),
            vocab: Arc::new(space.ontology().vocabulary().clone()),
            sig_support,
        }
    }

    /// Ground-truth significance of a fact-set.
    pub fn is_frequent(&self, a: &FactSet) -> bool {
        self.msp_factsets
            .iter()
            .any(|m| self.vocab.factset_leq(a, m))
    }
}

impl CrowdMember for PlantedOracle {
    fn id(&self) -> MemberId {
        self.id
    }

    fn ask_concrete(&mut self, a: &FactSet) -> f64 {
        if self.is_frequent(a) {
            self.sig_support
        } else {
            0.0
        }
    }

    fn ask_specialization(
        &mut self,
        _base: &FactSet,
        candidates: &[FactSet],
    ) -> Option<(usize, f64)> {
        candidates
            .iter()
            .position(|c| self.is_frequent(c))
            .map(|i| (i, self.sig_support))
    }

    fn irrelevant_elements(&mut self, a: &FactSet) -> Vec<ElementId> {
        // An element is irrelevant when no planted MSP mentions it or a
        // specialization of it.
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for f in a.iter() {
            for e in [f.subject, f.object] {
                if !seen.insert(e) {
                    continue;
                }
                let relevant = self.msp_factsets.iter().any(|m| {
                    m.iter().any(|mf| {
                        self.vocab.elem_leq(e, mf.subject) || self.vocab.elem_leq(e, mf.object)
                    })
                });
                if !relevant {
                    out.push(e);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SynthInstance};
    use oassis_core::{MinerConfig, VerticalMiner};

    fn instance() -> SynthInstance {
        SynthInstance::generate(&SynthConfig {
            width: 60,
            depth: 4,
            threshold: 0.2,
            ..Default::default()
        })
    }

    #[test]
    fn planted_set_is_an_antichain_of_requested_size() {
        let inst = instance();
        let msps = plant_msps(
            &inst.space,
            &inst.valid_nodes,
            8,
            MspDistribution::Uniform,
            1,
        );
        assert_eq!(msps.len(), 8);
        let vocab = inst.space.ontology().vocabulary();
        for (i, a) in msps.iter().enumerate() {
            for (j, b) in msps.iter().enumerate() {
                if i != j {
                    assert!(!a.leq(b, vocab), "{a} ≤ {b}");
                }
            }
        }
    }

    #[test]
    fn nearby_msps_are_clustered() {
        let inst = instance();
        let msps = plant_msps(
            &inst.space,
            &inst.valid_nodes,
            5,
            MspDistribution::Nearby,
            3,
        );
        assert!(msps.len() >= 2);
        // Every MSP after the first is within distance 4 of some other.
        for (i, a) in msps.iter().enumerate().skip(1) {
            let near = ball(&inst.space, a, 4);
            assert!(
                msps[..i].iter().any(|b| near.contains_key(b)),
                "MSP {i} is isolated"
            );
        }
    }

    #[test]
    fn far_msps_are_spread_out() {
        let inst = instance();
        let msps = plant_msps(&inst.space, &inst.valid_nodes, 4, MspDistribution::Far, 5);
        assert!(msps.len() >= 2, "found {}", msps.len());
        for (i, a) in msps.iter().enumerate() {
            let near = ball(&inst.space, a, 5);
            for (j, b) in msps.iter().enumerate() {
                if i != j {
                    assert!(!near.contains_key(b), "MSPs {i} and {j} are within 5");
                }
            }
        }
    }

    #[test]
    fn oracle_realizes_the_planted_truth() {
        let inst = instance();
        let msps = plant_msps(
            &inst.space,
            &inst.valid_nodes,
            5,
            MspDistribution::Uniform,
            7,
        );
        let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &msps, 0.5);
        let vocab = inst.space.ontology().vocabulary();
        // Each MSP itself is frequent; each generalization too; strict
        // specializations are not.
        for m in &msps {
            let fs = inst.space.instantiate(m);
            assert_eq!(oracle.ask_concrete(&fs), 0.5);
            for p in inst.space.predecessors(m) {
                assert_eq!(oracle.ask_concrete(&inst.space.instantiate(&p)), 0.5);
            }
            for s in inst.space.successors(m) {
                let frequent = msps.iter().any(|other| s.leq(other, vocab));
                if !frequent {
                    assert_eq!(oracle.ask_concrete(&inst.space.instantiate(&s)), 0.0);
                }
            }
        }
    }

    #[test]
    fn vertical_miner_recovers_planted_msps() {
        let inst = instance();
        let mut planted = plant_msps(
            &inst.space,
            &inst.valid_nodes,
            6,
            MspDistribution::Uniform,
            11,
        );
        let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &planted, 0.5);
        let out = VerticalMiner::run(&inst.space, &mut oracle, &MinerConfig::new(0.2));
        let mut found = out.msps.clone();
        planted.sort();
        found.sort();
        assert_eq!(found, planted, "vertical recovers exactly the planted MSPs");
    }

    #[test]
    fn multiplicity_msps_have_requested_size() {
        let inst = SynthInstance::generate(&SynthConfig {
            width: 40,
            depth: 3,
            multiplicities: true,
            threshold: 0.2,
            ..Default::default()
        });
        let base = plant_msps(
            &inst.space,
            &inst.valid_nodes,
            3,
            MspDistribution::Uniform,
            2,
        );
        let extra = plant_multiplicity_msps(&inst.space, &inst.valid_nodes, &base, 3, 3, 2);
        assert!(!extra.is_empty());
        for m in &extra {
            assert_eq!(m.weight(), 3);
            assert!(!m.is_single_valued());
        }
    }

    #[test]
    fn oracle_pruning_flags_uncovered_elements() {
        let inst = instance();
        let msps = plant_msps(
            &inst.space,
            &inst.valid_nodes,
            2,
            MspDistribution::Uniform,
            13,
        );
        let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &msps, 0.5);
        // The root's fact-set mentions "Pattern" (ancestor of everything) —
        // never irrelevant while MSPs exist.
        let root = inst.space.roots()[0].clone();
        let root_fs = inst.space.instantiate(&root);
        let irr = oracle.irrelevant_elements(&root_fs);
        let pattern = inst.ontology.vocabulary().element("Pattern").unwrap();
        assert!(!irr.contains(&pattern));
    }
}
