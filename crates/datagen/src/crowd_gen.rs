//! Simulated crowds for the real-crowd-style experiments (Figures 4a–4e).
//!
//! The paper recruited 248 members via social networks; we generate members
//! whose *personal transaction databases* realize a chosen set of popular
//! patterns with chosen popularity, so that running the full multi-user
//! engine produces the same kind of answer distribution the real crowd did.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use oassis_crowd::{CrowdMember, DbMember, MemberId, PersonalDb, ResponseModel, UnreliableMember};
use oassis_vocab::{Fact, FactSet, Vocabulary};

use crate::domains::Domain;

/// Crowd generation parameters.
#[derive(Debug, Clone)]
pub struct CrowdGenConfig {
    /// Number of members (the paper's crowd: 248).
    pub members: usize,
    /// Transactions per member.
    pub transactions_per_member: usize,
    /// Number of leaf-level (subject, object) patterns made popular.
    pub popular_patterns: usize,
    /// Probability that a transaction realizes a popular pattern (the rest
    /// are uniform random leaf combinations — the long tail).
    pub popularity: f64,
    /// Zipf exponent of the popular-pattern weights: pattern `i` is chosen
    /// with weight `1/(i+1)^zipf`. With exponent 1 the top pattern absorbs
    /// a ≈`popularity / H(n)` share — enough to clear realistic support
    /// thresholds at the instance level, like the paper's travel MSPs.
    pub zipf: f64,
    /// Popular facts drawn per transaction (≥ 1). Richer transactions
    /// raise class-level supports and create co-occurrence (multiplicity)
    /// patterns, which is what made the paper's travel query so much more
    /// expensive than the others.
    pub facts_per_transaction: usize,
    /// Snap member answers to the five-level UI scale.
    pub discretize: bool,
    /// Seed.
    pub seed: u64,
}

impl Default for CrowdGenConfig {
    fn default() -> Self {
        CrowdGenConfig {
            members: 40,
            transactions_per_member: 20,
            popular_patterns: 12,
            popularity: 0.7,
            zipf: 1.0,
            facts_per_transaction: 1,
            discretize: false,
            seed: 0,
        }
    }
}

/// The generated crowd plus the ground-truth popular pattern facts.
#[derive(Debug)]
pub struct GeneratedCrowd {
    /// The members (honest, DB-backed).
    pub members: Vec<DbMember>,
    /// The leaf-level popular patterns the DBs realize.
    pub popular: Vec<Fact>,
}

/// Generate a crowd for `domain`.
pub fn generate_crowd(domain: &Domain, config: &CrowdGenConfig) -> GeneratedCrowd {
    let vocab = Arc::new(domain.ontology.vocabulary().clone());
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let relation = vocab
        .relation(domain.relation)
        .expect("domain relation exists");

    let leaf_fact = |rng: &mut SmallRng, vocab: &Vocabulary| -> Fact {
        let s = &domain.subject_leaves[rng.random_range(0..domain.subject_leaves.len())];
        let o = &domain.object_leaves[rng.random_range(0..domain.object_leaves.len())];
        Fact::new(
            vocab.element(s).expect("subject leaf"),
            relation,
            vocab.element(o).expect("object leaf"),
        )
    };

    // Popular patterns: distinct leaf combinations, each with its own
    // per-pattern weight so some MSPs are more specific than others.
    let mut popular: Vec<Fact> = Vec::new();
    while popular.len() < config.popular_patterns {
        let f = leaf_fact(&mut rng, &vocab);
        if !popular.contains(&f) {
            popular.push(f);
        }
    }

    // Zipf weights over the popular patterns (cumulative for sampling).
    let weights: Vec<f64> = (0..popular.len())
        .map(|i| 1.0 / ((i + 1) as f64).powf(config.zipf))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total_weight;
        cumulative.push(acc);
    }
    let pick_popular = |rng: &mut SmallRng, cumulative: &[f64]| -> usize {
        let x: f64 = rng.random();
        cumulative.iter().position(|&c| x <= c).unwrap_or(0)
    };

    let mut members = Vec::with_capacity(config.members);
    for m in 0..config.members {
        let mut db = PersonalDb::new();
        for t in 0..config.transactions_per_member {
            let fact = if rng.random::<f64>() < config.popularity && !popular.is_empty() {
                popular[pick_popular(&mut rng, &cumulative)]
            } else {
                leaf_fact(&mut rng, &vocab)
            };
            let mut facts = vec![fact];
            for _ in 1..config.facts_per_transaction.max(1) {
                facts.push(popular[pick_popular(&mut rng, &cumulative)]);
            }
            // Occasionally one extra co-occurring popular fact (source of
            // multiplicity MSPs).
            if rng.random::<f64>() < 0.25 {
                facts.push(popular[pick_popular(&mut rng, &cumulative)]);
            }
            db.push(oassis_crowd::Transaction::new(
                t as u64,
                FactSet::from_facts(facts),
            ));
        }
        let mut member = DbMember::new(MemberId(m as u32), db, Arc::clone(&vocab));
        if config.discretize {
            member = member.with_discretization();
        }
        members.push(member);
    }
    GeneratedCrowd { members, popular }
}

/// Generate a runtime-ready roster of `n` members for `domain`: DB-backed
/// honest members (so answers are a pure function of the asked fact set)
/// wrapped in a rotating mix of reliable [`ResponseModel`]s — instant,
/// fixed-latency, and two latency+jitter tiers. No channel ever drops, so
/// no member can be excluded and a run's answer set is independent of how
/// questions are batched or sharded; the crowd-scale benchmark relies on
/// that to verify sharded runs against the 1-shard reference.
///
/// Transactions per member are kept small (8) so 100k-member rosters
/// generate in seconds; popularity parameters otherwise follow
/// [`CrowdGenConfig`] defaults.
pub fn members(domain: &Domain, n: usize, seed: u64) -> Vec<Box<dyn CrowdMember>> {
    let crowd = generate_crowd(
        domain,
        &CrowdGenConfig {
            members: n,
            transactions_per_member: 8,
            seed,
            ..CrowdGenConfig::default()
        },
    );
    crowd
        .members
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            // Millisecond-scale think times keep benchmark runs short while
            // still dwarfing per-question coordinator work, so throughput is
            // bound by how many members can be kept busy — the quantity the
            // shard/wave experiments vary.
            let model = match i % 4 {
                0 => ResponseModel::instant(),
                1 => ResponseModel::latency(Duration::from_millis(1)),
                2 => ResponseModel::latency(Duration::from_micros(2_500))
                    .with_jitter(Duration::from_millis(1)),
                _ => ResponseModel::latency(Duration::from_millis(5))
                    .with_jitter(Duration::from_millis(2)),
            };
            let member_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64);
            Box::new(UnreliableMember::new(Box::new(m), model, member_seed)) as Box<dyn CrowdMember>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::self_treatment_domain;

    #[test]
    fn crowd_has_requested_shape() {
        let domain = self_treatment_domain();
        let crowd = generate_crowd(
            &domain,
            &CrowdGenConfig {
                members: 10,
                transactions_per_member: 15,
                popular_patterns: 5,
                ..Default::default()
            },
        );
        assert_eq!(crowd.members.len(), 10);
        assert_eq!(crowd.popular.len(), 5);
    }

    #[test]
    fn popular_patterns_have_high_average_support() {
        let domain = self_treatment_domain();
        let crowd = generate_crowd(
            &domain,
            &CrowdGenConfig {
                members: 20,
                transactions_per_member: 30,
                popular_patterns: 3,
                popularity: 0.9,
                ..Default::default()
            },
        );
        let vocab = domain.ontology.vocabulary();
        for &fact in &crowd.popular {
            let fs = FactSet::from_facts([fact]);
            let avg: f64 = crowd
                .members
                .iter()
                .map(|m| m.true_support(&fs))
                .sum::<f64>()
                / crowd.members.len() as f64;
            assert!(
                avg > 0.05,
                "popular pattern {} has avg support {avg}",
                vocab.fact_to_string(&fact)
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let domain = self_treatment_domain();
        let cfg = CrowdGenConfig {
            members: 5,
            seed: 42,
            ..Default::default()
        };
        let a = generate_crowd(&domain, &cfg);
        let b = generate_crowd(&domain, &cfg);
        assert_eq!(a.popular, b.popular);
        let fs = FactSet::from_facts([a.popular[0]]);
        for (x, y) in a.members.iter().zip(&b.members) {
            assert_eq!(x.true_support(&fs), y.true_support(&fs));
        }
    }

    #[test]
    fn roster_mixes_models_and_is_seeded() {
        let domain = self_treatment_domain();
        let roster = members(&domain, 13, 7);
        assert_eq!(roster.len(), 13);
        // Roster members answer purely by fact set, independent of model.
        let crowd = generate_crowd(
            &domain,
            &CrowdGenConfig {
                members: 13,
                transactions_per_member: 8,
                seed: 7,
                ..CrowdGenConfig::default()
            },
        );
        let fs = FactSet::from_facts([crowd.popular[0]]);
        let mut again = members(&domain, 13, 7);
        for (m, n) in roster.iter().zip(again.iter_mut()) {
            assert_eq!(m.id(), n.id());
            assert!(m.willing());
            assert_eq!(n.ask_concrete(&fs), n.ask_concrete(&fs));
        }
    }

    #[test]
    fn members_answer_consistently() {
        let domain = self_treatment_domain();
        let crowd = generate_crowd(&domain, &CrowdGenConfig::default());
        let mut m = crowd.members[0].clone();
        let fs = FactSet::from_facts([crowd.popular[0]]);
        let a1 = m.ask_concrete(&fs);
        let a2 = m.ask_concrete(&fs);
        assert_eq!(a1, a2);
    }
}
