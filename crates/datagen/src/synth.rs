//! Synthetic assignment DAGs with controlled shape (§6.4).
//!
//! The paper varies the DAG's *width* (500–2000) and *depth* (4–7) starting
//! from a travel-like DAG. We generate a single-variable query over a
//! synthesized taxonomy tree whose leaf count equals the requested width and
//! whose height equals the requested depth; the assignment DAG is then
//! isomorphic to the taxonomy, giving exact shape control.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use oassis_core::{AssignSpace, Assignment};
use oassis_ql::parse_query;
use oassis_sparql::MatchMode;
use oassis_store::Ontology;

/// Shape parameters for a synthetic DAG.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of leaves (the DAG's width). The paper uses 500–2000.
    pub width: usize,
    /// Tree height (the DAG's depth). The paper uses 4–7.
    pub depth: usize,
    /// Whether the `SATISFYING` variable carries a `+` multiplicity
    /// (enables multiplicity-combination nodes).
    pub multiplicities: bool,
    /// Generate a *two-variable* query (`$y rel $z` over two taxonomies),
    /// like the travel query the paper derived its synthetic DAG from. The
    /// requested width is split across the two trees (`width/10 × 10`), so
    /// the product DAG's widest level still approximates `width`. Pruning
    /// experiments need this: flagging one value irrelevant then kills a
    /// whole cross-product slice, which a single tree cannot exhibit.
    pub two_vars: bool,
    /// Support threshold written into the query.
    pub threshold: f64,
    /// Seed controlling the tree's (randomized) internal branching.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            width: 500,
            depth: 7,
            multiplicities: false,
            two_vars: false,
            threshold: 0.2,
            seed: 0,
        }
    }
}

/// A generated synthetic instance: ontology, query, prebuilt space, and the
/// enumerated single-valued DAG.
#[derive(Debug)]
pub struct SynthInstance {
    /// The generated ontology (a taxonomy under `Pattern`, plus `Place`).
    pub ontology: Arc<Ontology>,
    /// The generated query.
    pub query_src: String,
    /// The assignment space for the query.
    pub space: AssignSpace,
    /// All single-valued DAG nodes.
    pub all_nodes: Vec<Assignment>,
    /// The valid nodes (here: all of them — class-level query).
    pub valid_nodes: Vec<Assignment>,
}

impl SynthInstance {
    /// Generate an instance for `config`.
    pub fn generate(config: &SynthConfig) -> SynthInstance {
        assert!(config.depth >= 2, "depth must be at least 2");
        assert!(config.width >= 1);
        let mut rng = SmallRng::seed_from_u64(config.seed);

        let mut b = Ontology::builder();
        b.relation("doAt");

        let mult = if config.multiplicities { "+" } else { "" };
        let query_src = if config.two_vars {
            // Split the width across two trees so the product DAG's widest
            // level approximates the requested width.
            let wb = 10usize.min(config.width);
            let wa = (config.width / wb).max(1);
            let db = 2usize.min(config.depth - 2).max(1);
            let da = (config.depth - db).max(2);
            build_level_tree(&mut b, &mut rng, "Pattern", "P", wa, da);
            build_level_tree(&mut b, &mut rng, "Context", "C", wb, db);
            format!(
                "SELECT FACT-SETS WHERE $y subClassOf* Pattern. $z subClassOf* Context \
                 SATISFYING $y{mult} doAt $z WITH SUPPORT = {}",
                config.threshold
            )
        } else {
            b.element("Somewhere");
            build_level_tree(&mut b, &mut rng, "Pattern", "P", config.width, config.depth);
            format!(
                "SELECT FACT-SETS WHERE $y subClassOf* Pattern \
                 SATISFYING $y{mult} doAt Somewhere WITH SUPPORT = {}",
                config.threshold
            )
        };

        let ontology = Arc::new(b.build().expect("synthetic taxonomy is a tree"));
        let query = parse_query(&query_src, &ontology).expect("generated query parses");
        let space = AssignSpace::build(
            Arc::clone(&ontology),
            &query,
            MatchMode::Semantic,
            Vec::new(),
        )
        .expect("generated space builds");
        let all_nodes = space
            .enumerate_single_valued(10_000_000)
            .expect("bound-only query enumerates");
        let valid_nodes: Vec<Assignment> = all_nodes
            .iter()
            .filter(|a| space.is_valid(a))
            .cloned()
            .collect();
        SynthInstance {
            ontology,
            query_src,
            space,
            all_nodes,
            valid_nodes,
        }
    }

    /// The DAG's node count (without multiplicities).
    pub fn node_count(&self) -> usize {
        self.all_nodes.len()
    }
}

/// Build a class tree under `root` whose level sizes grow geometrically to
/// `width` leaves at depth `depth`. The first children of each level cover
/// every parent (so internal nodes are never leaves); the rest attach to
/// random parents, varying the branching as the paper did by "arbitrarily
/// pruning/replicating parts of the DAG".
fn build_level_tree(
    b: &mut oassis_store::OntologyBuilder,
    rng: &mut SmallRng,
    root: &str,
    prefix: &str,
    width: usize,
    depth: usize,
) {
    let levels = depth.max(1);
    let mut sizes: Vec<usize> = (1..=levels)
        .map(|l| {
            let frac = l as f64 / levels as f64;
            ((width as f64).powf(frac).round() as usize).max(1)
        })
        .collect();
    *sizes.last_mut().expect("levels >= 1") = width;

    b.element(root);
    let mut prev: Vec<String> = vec![root.to_owned()];
    for (level, &size) in sizes.iter().enumerate() {
        let mut cur = Vec::with_capacity(size);
        for i in 0..size {
            let name = format!("{prefix}{level}-{i}");
            let parent = if i < prev.len() {
                prev[i].clone()
            } else {
                prev[rng.random_range(0..prev.len())].clone()
            };
            b.subclass(&name, &parent);
            cur.push(name);
        }
        prev = cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_and_depth_are_respected() {
        let inst = SynthInstance::generate(&SynthConfig {
            width: 50,
            depth: 4,
            ..Default::default()
        });
        let v = inst.ontology.vocabulary();
        // Leaves of the taxonomy = width (plus "Somewhere", which is not in
        // the Pattern tree).
        let leaves = v
            .elements_order()
            .leaves()
            .filter(|&e| v.element_name(e).starts_with('P'))
            .count();
        assert_eq!(leaves, 50);
        assert_eq!(v.elements_order().height(), 4);
    }

    #[test]
    fn all_nodes_are_valid_for_class_queries() {
        let inst = SynthInstance::generate(&SynthConfig {
            width: 30,
            depth: 3,
            ..Default::default()
        });
        assert_eq!(inst.all_nodes.len(), inst.valid_nodes.len());
        // Node count = taxonomy size under Pattern (root tier included).
        assert!(inst.node_count() > 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SynthInstance::generate(&SynthConfig {
            width: 40,
            depth: 5,
            seed: 9,
            ..Default::default()
        });
        let b = SynthInstance::generate(&SynthConfig {
            width: 40,
            depth: 5,
            seed: 9,
            ..Default::default()
        });
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.query_src, b.query_src);
        let c = SynthInstance::generate(&SynthConfig {
            width: 40,
            depth: 5,
            seed: 10,
            ..Default::default()
        });
        // Same width, possibly different internal wiring.
        assert_eq!(c.all_nodes.len(), a.all_nodes.len());
    }

    #[test]
    fn multiplicity_flag_changes_query() {
        let inst = SynthInstance::generate(&SynthConfig {
            width: 10,
            depth: 2,
            multiplicities: true,
            ..Default::default()
        });
        assert!(inst.query_src.contains("$y+"));
        // Successors of a leaf node include multiplicity combinations.
        let leaf = inst
            .all_nodes
            .iter()
            .find(|a| {
                inst.space
                    .successors(a)
                    .iter()
                    .any(|s| !s.is_single_valued())
            })
            .cloned();
        assert!(leaf.is_some(), "some node has a multiplicity successor");
    }

    #[test]
    fn paper_shapes_generate() {
        for (w, d) in [(500usize, 7usize), (500, 4), (1000, 7)] {
            let inst = SynthInstance::generate(&SynthConfig {
                width: w,
                depth: d,
                ..Default::default()
            });
            assert!(inst.node_count() >= w);
        }
    }
}
