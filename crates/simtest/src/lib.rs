//! Deterministic simulation harness for the concurrent crowd runtime
//! (FoundationDB-style).
//!
//! One [`simulate`] call runs a **complete mining session** — the paper's
//! travel-domain query over the Table 3 crowd — on the runtime's
//! single-threaded simulation executor: a seeded scheduler owns every
//! interleaving decision and all waiting (member latency, timeouts,
//! retries) happens on a virtual clock, so a run replays bit-identically
//! from one `u64` seed at zero wall-clock cost.
//!
//! On top of that, [`check_seed`] runs the differential **oracles** that
//! pin down the paper's §5 guarantee (the answer set is independent of how
//! crowd answers arrive):
//!
//! 1. **replay** — the same seed twice yields byte-identical transcripts
//!    and decision sequences;
//! 2. **concurrent ≡ sequential** — valid-MSP set (and, when no member is
//!    excluded, question count) matches the synchronous reference run;
//! 3. **indexed ≡ unindexed** — flipping `use_indexes` changes nothing
//!    observable;
//! 4. **obs conservation** — every `runtime.question.*` event issued is
//!    answered, retried, cancelled, or excluded (no event leaks), checked
//!    on an `InMemorySink` snapshot.
//!
//! [`sweep`] drives `check_seed` across a seed range; [`shrink`] reduces a
//! failing schedule to a minimal set of non-FIFO scheduling decisions (the
//! "minimal fault trace"). Reproduce any failure with the printed
//! one-liner: `OASSIS_SIM_SEED=<seed> cargo test --test simulation` or
//! `cargo run --release -p oassis-simtest --bin sim -- repro <seed>`.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use oassis_core::engine::service::SessionReport;
use oassis_core::{
    EngineConfig, MultiUserMiner, Oassis, OassisService, QueryResult, SessionRuntime, SessionSpec,
    SimChaos, SimConfig, SimTrace, VirtualClock,
};
use oassis_net::{
    FaultConfig, NetClient, NetServer, Request, Response, SimNet, SimTransport, WireStatus,
    PROTOCOL_VERSION,
};
use oassis_store_durable::{AdmitSpec, InMemory, SharedPersistence, WalRecord};
use oassis_crowd::transaction::table3_dbs;
use oassis_crowd::{CrowdMember, DbMember, MemberId, ResponseModel, UnreliableMember};
use oassis_obs::{names, Event, EventKind, EventSink, InMemorySink, Snapshot};
use oassis_store::ontology::figure1_ontology;

/// The paper's running travel-domain query (Figure 2 family), identical to
/// the one `tests/runtime_concurrency.rs` uses.
pub const QUERY: &str = "SELECT FACT-SETS WHERE \
      $x instanceOf $w. $w subClassOf* Attraction. \
      $y subClassOf* Activity \
    SATISFYING $y doAt $x WITH SUPPORT = 0.4";

const SUPPORT: f64 = 0.4;

/// Seeds that once exposed (or are constructed to keep exposing) specific
/// bug classes; `tests/simulation.rs` replays them every run.
///
/// The even seeds select the latency fault family, whose member 0 is
/// scripted to answer its first question **exactly at** the per-question
/// deadline — the timeout-vs-late-answer race. The oracles prove the
/// answer is committed, never double-counted as an exclusion.
pub const REGRESSION_SEEDS: &[u64] = &[0, 2, 0xDEAD_BEE2, 0x5EED_5EED_5EED_5EE0];

/// Which fault family a simulated run injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFamily {
    /// Perfect channels: every answer instant and delivered.
    None,
    /// Latency + jitter on every member (no drops), with member 0's first
    /// answer landing exactly on the deadline. Nobody is excluded, so the
    /// run must match the sequential reference in both the valid-MSP set
    /// and the question count.
    Latency,
    /// The healthy crowd plus two clones whose channel drops every answer:
    /// the clones are deterministically timed out, retried and excluded.
    /// Question counts legitimately differ (asks wasted on the clones), so
    /// only the valid-MSP set is compared.
    DropClones,
}

/// How [`simulate`] picks the fault family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// No faults.
    None,
    /// Derive the family from the seed (even → latency, odd → drop
    /// clones) — what [`sweep`] uses.
    FromSeed,
    /// Force the latency family.
    Latency,
    /// Force the drop-clones family.
    DropClones,
}

impl FaultPlan {
    /// The concrete family this plan yields for `seed`.
    pub fn family(self, seed: u64) -> FaultFamily {
        match self {
            FaultPlan::None => FaultFamily::None,
            FaultPlan::Latency => FaultFamily::Latency,
            FaultPlan::DropClones => FaultFamily::DropClones,
            FaultPlan::FromSeed => {
                if seed.is_multiple_of(2) {
                    FaultFamily::Latency
                } else {
                    FaultFamily::DropClones
                }
            }
        }
    }
}

/// Knobs of one simulated run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Fault injection plan (default: derive from the seed).
    pub faults: FaultPlan,
    /// Engine `use_indexes` flag (default `true`; the indexed≡unindexed
    /// oracle flips it).
    pub use_indexes: bool,
    /// Replay an explicit scheduling-decision script instead of drawing
    /// decisions from the seed (the shrinker's replay mechanism).
    pub script: Option<Vec<usize>>,
    /// Deliberate bug injection, used to prove the harness catches and
    /// shrinks real schedule-dependent corruption.
    pub chaos: Option<SimChaos>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            faults: FaultPlan::FromSeed,
            use_indexes: true,
            script: None,
            chaos: None,
        }
    }
}

/// Everything one simulated run produced.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The scheduler seed.
    pub seed: u64,
    /// The fault family that was injected.
    pub family: FaultFamily,
    /// Sorted rendered valid MSPs (empty if the run errored).
    pub msps: Vec<String>,
    /// Total crowd questions asked (0 if the run errored).
    pub questions: usize,
    /// The byte-stable scheduler transcript (question order, retries,
    /// timeouts, exclusions).
    pub transcript: String,
    /// The raw scheduling decisions, replayable via `SimOptions::script`.
    pub decisions: Vec<usize>,
    /// Obs snapshot of the run's full event stream.
    pub snapshot: Snapshot,
    /// The engine error, if the run failed (e.g. crowd exhausted).
    pub error: Option<String>,
}

/// Splitmix-style seed mixing for per-member channel generators.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(i);
    z ^= z >> 31;
    z.wrapping_mul(0x94D0_49BB_1331_11EB)
}

/// `n_pairs` copies of the paper's u1/u2 member pair; `DbMember` answers
/// are a pure function of the asked fact-set, which is the precondition of
/// the runtime's determinism guarantee.
pub fn crowd(n_pairs: u32) -> Vec<Box<dyn CrowdMember>> {
    let o = figure1_ontology();
    let vocab = Arc::new(o.vocabulary().clone());
    let (d1, d2) = table3_dbs(&vocab);
    let mut members: Vec<Box<dyn CrowdMember>> = Vec::new();
    for i in 0..n_pairs {
        members.push(Box::new(DbMember::new(
            MemberId(2 * i),
            d1.clone(),
            Arc::clone(&vocab),
        )));
        members.push(Box::new(DbMember::new(
            MemberId(2 * i + 1),
            d2.clone(),
            Arc::clone(&vocab),
        )));
    }
    members
}

/// Sorted rendered valid MSPs of a result.
pub fn valid_msp_set(result: &QueryResult) -> Vec<String> {
    let mut v: Vec<String> = result
        .answers
        .iter()
        .filter(|a| a.valid)
        .map(|a| a.rendered.clone())
        .collect();
    v.sort();
    v
}

/// The latency family's per-question timeout. Virtual time makes generous
/// deadlines free, so it is deliberately huge relative to the injected
/// delays: nobody can be excluded by latency alone.
const LATENCY_TIMEOUT: Duration = Duration::from_secs(10);
/// The drop-clone family's timeout: small in virtual time (the sweep pays
/// nothing for it) but irrelevant to healthy members, who answer at t+0.
const DROP_TIMEOUT: Duration = Duration::from_millis(5);

/// Build the member set + runtime options for `(seed, family)`.
fn faulted_runtime(seed: u64, family: FaultFamily) -> SessionRuntime {
    match family {
        FaultFamily::None => SessionRuntime::new(crowd(3)),
        FaultFamily::Latency => {
            let base = Duration::from_micros(200 + (seed % 8) * 150);
            let jitter = Duration::from_micros(400);
            let members: Vec<Box<dyn CrowdMember>> = crowd(3)
                .into_iter()
                .enumerate()
                .map(|(i, m)| {
                    let model = ResponseModel::latency(base).with_jitter(jitter);
                    let wrapped = UnreliableMember::new(m, model, mix(seed, i as u64));
                    let wrapped = if i == 0 {
                        // The deadline-race regression: the first answer
                        // arrives exactly at the timeout and must be
                        // committed, not excluded.
                        wrapped.with_delay_script([Some(LATENCY_TIMEOUT)])
                    } else {
                        wrapped
                    };
                    Box::new(wrapped) as Box<dyn CrowdMember>
                })
                .collect();
            SessionRuntime::new(members)
                .question_timeout(LATENCY_TIMEOUT)
                .max_retries(2)
        }
        FaultFamily::DropClones => {
            let mut members = crowd(3);
            let o = figure1_ontology();
            let vocab = Arc::new(o.vocabulary().clone());
            let (d1, d2) = table3_dbs(&vocab);
            let always_drop = ResponseModel::instant().with_drop_probability(1.0);
            members.push(Box::new(UnreliableMember::new(
                Box::new(DbMember::new(MemberId(100), d1, Arc::clone(&vocab))),
                always_drop,
                mix(seed, 100),
            )));
            members.push(Box::new(UnreliableMember::new(
                Box::new(DbMember::new(MemberId(101), d2, vocab)),
                always_drop,
                mix(seed, 101),
            )));
            SessionRuntime::new(members)
                .question_timeout(DROP_TIMEOUT)
                .max_retries(1)
        }
    }
}

/// The engine seed used for a scheduler seed. Kept to a small cycle so the
/// sequential references can be cached: the sweep's point is varying the
/// *schedule*, and the answer set must not move with it.
fn engine_seed(seed: u64) -> u64 {
    seed % 4
}

fn engine_config(seed: u64, use_indexes: bool, sink: Arc<dyn EventSink>) -> EngineConfig {
    EngineConfig::builder()
        .seed(engine_seed(seed))
        .use_indexes(use_indexes)
        .sink(sink)
        .clock(Arc::new(VirtualClock::new()))
        .build()
}

/// Run one complete simulated session and report everything it did.
pub fn simulate(seed: u64, opts: &SimOptions) -> SimOutcome {
    let family = opts.faults.family(seed);
    let engine = Oassis::new(figure1_ontology());
    let query = engine.parse(QUERY).expect("the harness query parses");
    let mem = InMemorySink::shared();
    let cfg = engine_config(
        seed,
        opts.use_indexes,
        Arc::clone(&mem) as Arc<dyn EventSink>,
    );
    let space = engine.space(&query, &cfg).expect("space construction");
    let miner = MultiUserMiner::new(&space, SUPPORT, &cfg);

    let trace = SimTrace::handle();
    let mut sim = SimConfig::new(seed).record_into(Arc::clone(&trace));
    if let Some(script) = &opts.script {
        sim = sim.scripted(script.clone());
    }
    if let Some(chaos) = opts.chaos {
        sim = sim.chaos(chaos);
    }
    let runtime = faulted_runtime(seed, family).simulated(sim);

    let (msps, questions, error) = match miner.run(runtime) {
        Ok((result, _)) => (valid_msp_set(&result), result.stats.total_questions, None),
        Err(e) => (Vec::new(), 0, Some(e.to_string())),
    };
    let trace = trace.lock().expect("sim trace lock");
    SimOutcome {
        seed,
        family,
        msps,
        questions,
        transcript: trace.transcript(),
        decisions: trace.decisions.clone(),
        snapshot: mem.snapshot(),
        error,
    }
}

/// The sequential reference for one engine seed: the synchronous
/// `run_direct` path over the clean crowd.
#[derive(Debug, Clone)]
pub struct Reference {
    /// Sorted rendered valid MSPs.
    pub msps: Vec<String>,
    /// Total questions the sequential run asked.
    pub questions: usize,
}

/// The cached sequential reference for `seed` (computed once per engine
/// seed; see [`engine_seed`]'s cycle).
pub fn sequential_reference(seed: u64) -> Arc<Reference> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<Reference>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = engine_seed(seed);
    if let Some(r) = cache.lock().expect("reference cache").get(&key) {
        return Arc::clone(r);
    }
    let engine = Oassis::new(figure1_ontology());
    let query = engine.parse(QUERY).expect("the harness query parses");
    let cfg = engine_config(seed, true, oassis_obs::null_sink());
    let space = engine.space(&query, &cfg).expect("space construction");
    let miner = MultiUserMiner::new(&space, SUPPORT, &cfg);
    let mut members = crowd(3);
    let (result, _) = miner.run_direct(&mut members);
    let reference = Arc::new(Reference {
        msps: valid_msp_set(&result),
        questions: result.stats.total_questions,
    });
    cache
        .lock()
        .expect("reference cache")
        .insert(key, Arc::clone(&reference));
    reference
}

/// One oracle violation, with enough context to print and reproduce.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// The failing seed.
    pub seed: u64,
    /// Which oracle tripped.
    pub oracle: &'static str,
    /// What diverged.
    pub detail: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {} failed oracle `{}`: {} — repro: {}",
            self.seed,
            self.oracle,
            self.detail,
            repro_command(self.seed)
        )
    }
}

/// The one-line command that replays `seed` locally.
pub fn repro_command(seed: u64) -> String {
    format!("OASSIS_SIM_SEED={seed} cargo run --release -p oassis-simtest --bin sim -- repro")
}

/// Guard against vacuously-passing oracles: fail `oracle` if *every* MSP
/// set it is about to compare is empty — "nothing equals nothing" proves
/// nothing about crash recovery or equivalence. Every comparison oracle
/// calls this on its baseline; an oracle that legitimately expects empty
/// sets (none today) opts out by not calling it.
pub fn require_nonvacuous<'a>(
    seed: u64,
    oracle: &'static str,
    msp_sets: impl IntoIterator<Item = &'a Vec<String>>,
) -> Result<(), OracleFailure> {
    let mut any_set = false;
    for set in msp_sets {
        any_set = true;
        if !set.is_empty() {
            return Ok(());
        }
    }
    if !any_set {
        return Ok(()); // nothing to compare is the caller's bug, not vacuity
    }
    Err(OracleFailure {
        seed,
        oracle,
        detail: "every MSP set is empty — the comparison would be vacuous".into(),
    })
}

fn counter(snap: &Snapshot, name: &str, label: &str) -> u64 {
    snap.counter(&format!("{name}[{label}]"))
}

/// The obs event-stream conservation laws: every question dispatched is
/// resolved exactly once; every timeout is either retried or ends the
/// question; exclusions match terminal failures; speculative work is fully
/// accounted as hit, cancelled or wasted.
pub fn check_conservation(snap: &Snapshot) -> Result<(), String> {
    let dispatched = snap.counter_across_labels(names::RUNTIME_DISPATCHED);
    let resolved = snap.counter_across_labels(names::RUNTIME_RESOLVED);
    if dispatched != resolved {
        return Err(format!(
            "dispatched {dispatched} != resolved {resolved} (a question leaked)"
        ));
    }
    let timeouts = snap.counter_across_labels(names::RUNTIME_TIMEOUT);
    let retries = snap.counter(names::RUNTIME_RETRY);
    let resolved_timeout = counter(snap, names::RUNTIME_RESOLVED, "timeout");
    if timeouts != retries + resolved_timeout {
        return Err(format!(
            "timeouts {timeouts} != retries {retries} + terminal timeouts {resolved_timeout}"
        ));
    }
    let excluded_timeout = counter(snap, names::RUNTIME_MEMBER_EXCLUDED, "timeout");
    if excluded_timeout != resolved_timeout {
        return Err(format!(
            "excluded[timeout] {excluded_timeout} != resolved[timeout] {resolved_timeout}"
        ));
    }
    let excluded_poisoned = counter(snap, names::RUNTIME_MEMBER_EXCLUDED, "poisoned");
    let resolved_poisoned = counter(snap, names::RUNTIME_RESOLVED, "poisoned");
    if excluded_poisoned != resolved_poisoned {
        return Err(format!(
            "excluded[poisoned] {excluded_poisoned} != resolved[poisoned] {resolved_poisoned}"
        ));
    }
    let spec_dispatched = counter(snap, names::RUNTIME_SPECULATION, "dispatched");
    let spec_hit = counter(snap, names::RUNTIME_SPECULATION, "hit");
    let spec_wasted = counter(snap, names::RUNTIME_SPECULATION, "wasted");
    let spec_cancelled = snap.counter(names::RUNTIME_CANCELLED);
    if spec_dispatched != spec_hit + spec_wasted + spec_cancelled {
        return Err(format!(
            "speculation dispatched {spec_dispatched} != hit {spec_hit} + cancelled \
             {spec_cancelled} + wasted {spec_wasted}"
        ));
    }
    Ok(())
}

/// Compare a simulated outcome against the sequential reference per the
/// fault family's contract.
fn check_against_reference(outcome: &SimOutcome, reference: &Reference) -> Result<(), String> {
    if let Some(e) = &outcome.error {
        return Err(format!("run errored: {e}"));
    }
    if outcome.msps != reference.msps {
        return Err(format!(
            "valid-MSP set diverged: got {} MSPs, reference has {}",
            outcome.msps.len(),
            reference.msps.len()
        ));
    }
    match outcome.family {
        FaultFamily::None | FaultFamily::Latency => {
            if outcome.questions != reference.questions {
                return Err(format!(
                    "question count diverged: {} vs reference {}",
                    outcome.questions, reference.questions
                ));
            }
            Ok(())
        }
        // Excluded clones legitimately waste questions; only the answer
        // set is schedule-independent.
        FaultFamily::DropClones => Ok(()),
    }
}

/// Run every oracle for one seed (three simulated runs: two identical for
/// the replay oracle, one with `use_indexes` flipped).
pub fn check_seed(seed: u64) -> Result<(), OracleFailure> {
    let fail = |oracle: &'static str, detail: String| OracleFailure {
        seed,
        oracle,
        detail,
    };
    let opts = SimOptions::default();
    let a = simulate(seed, &opts);
    let b = simulate(seed, &opts);
    if a.transcript != b.transcript {
        return Err(fail(
            "replay",
            "two runs of the same seed produced different transcripts".into(),
        ));
    }
    if a.decisions != b.decisions {
        return Err(fail(
            "replay",
            "two runs of the same seed made different scheduling decisions".into(),
        ));
    }
    let reference = sequential_reference(seed);
    check_against_reference(&a, &reference)
        .map_err(|d| fail("concurrent-vs-sequential", d))?;
    let unindexed = simulate(
        seed,
        &SimOptions {
            use_indexes: false,
            ..opts
        },
    );
    if unindexed.msps != a.msps || unindexed.questions != a.questions {
        return Err(fail(
            "indexed-vs-unindexed",
            format!(
                "use_indexes flip changed the outcome: {} MSPs / {} questions vs {} / {}",
                unindexed.msps.len(),
                unindexed.questions,
                a.msps.len(),
                a.questions
            ),
        ));
    }
    check_conservation(&a.snapshot).map_err(|d| fail("obs-conservation", d))?;
    check_conservation(&unindexed.snapshot).map_err(|d| fail("obs-conservation", d))?;
    Ok(())
}

/// Outcome of a [`sweep`].
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Seeds that passed every oracle.
    pub passed: u64,
    /// Oracle violations, in seed order.
    pub failures: Vec<OracleFailure>,
}

/// Run [`check_seed`] over `seeds`.
pub fn sweep(seeds: impl IntoIterator<Item = u64>) -> SweepReport {
    let mut report = SweepReport::default();
    for seed in seeds {
        match check_seed(seed) {
            Ok(()) => report.passed += 1,
            Err(failure) => report.failures.push(failure),
        }
    }
    report
}

/// A shrunk failing schedule.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimal decision script that still fails (replay with
    /// `SimOptions::script`).
    pub script: Vec<usize>,
    /// How many decisions deviate from FIFO — the size of the minimal
    /// fault trace.
    pub non_fifo: usize,
    /// Transcript of the minimal failing run.
    pub transcript: String,
}

/// Shrink a failing seed to a minimal fault trace: greedily revert
/// scheduling decisions to FIFO (ddmin-style, halving chunk sizes) and
/// keep only the non-FIFO decisions the failure genuinely needs. Returns
/// `None` if `seed` does not fail `failing` in the first place.
pub fn shrink(
    seed: u64,
    opts: &SimOptions,
    failing: impl Fn(&SimOutcome) -> bool,
) -> Option<ShrinkResult> {
    let initial = simulate(seed, opts);
    if !failing(&initial) {
        return None;
    }
    let mut script = initial.decisions;
    let rerun = |script: &[usize]| {
        simulate(
            seed,
            &SimOptions {
                script: Some(script.to_vec()),
                ..opts.clone()
            },
        )
    };

    let non_fifo_idxs =
        |s: &[usize]| s.iter().enumerate().filter(|(_, d)| **d != 0).map(|(i, _)| i).collect::<Vec<_>>();
    let mut chunk = non_fifo_idxs(&script).len().max(1);
    while chunk >= 1 {
        let idxs = non_fifo_idxs(&script);
        for window in idxs.chunks(chunk) {
            let mut candidate = script.clone();
            for &i in window {
                candidate[i] = 0;
            }
            if failing(&rerun(&candidate)) {
                script = candidate;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    while script.last() == Some(&0) {
        script.pop();
    }
    let outcome = rerun(&script);
    debug_assert!(failing(&outcome), "shrinking must preserve the failure");
    Some(ShrinkResult {
        non_fifo: script.iter().filter(|&&d| d != 0).count(),
        transcript: outcome.transcript,
        script,
    })
}

/// A predicate for [`shrink`]: the outcome diverges from the sequential
/// reference (per its family's contract) or breaks event conservation.
pub fn diverges_from_reference(outcome: &SimOutcome) -> bool {
    let reference = sequential_reference(outcome.seed);
    check_against_reference(outcome, &reference).is_err()
        || check_conservation(&outcome.snapshot).is_err()
}

// ---------------------------------------------------------------------------
// Multi-session service simulation (PR 5): whole `OassisService` runs — many
// concurrent pull-based sessions over one simulated crowd — driven from one
// seed, with service-level oracles (replay, starvation bound, disjoint-roster
// isolation, single-session differential).
// ---------------------------------------------------------------------------

/// The query rotation for multi-session service runs: distinct SATISFYING
/// targets so every crowd dispatch is attributable, plus the full travel
/// query for overlap.
pub const SERVICE_QUERIES: &[&str] = &[
    QUERY,
    "SELECT FACT-SETS WHERE $y subClassOf* Activity \
     SATISFYING $y doAt <Central Park> WITH SUPPORT = 0.3",
    "SELECT FACT-SETS WHERE $y subClassOf* Activity \
     SATISFYING $y doAt <Bronx Zoo> WITH SUPPORT = 0.3",
];

/// One session of a simulated service run.
#[derive(Debug, Clone)]
pub struct ServicePlan {
    /// OASSIS-QL source.
    pub query: String,
    /// Pool seats the session may ask (`None` = all).
    pub roster: Option<Vec<usize>>,
    /// Scheduling priority.
    pub priority: u8,
    /// Crowd-question budget.
    pub budget: Option<usize>,
}

/// `n` full-roster, equal-priority sessions rotating over
/// [`SERVICE_QUERIES`].
pub fn service_plans(n: usize) -> Vec<ServicePlan> {
    (0..n)
        .map(|i| ServicePlan {
            query: SERVICE_QUERIES[i % SERVICE_QUERIES.len()].to_string(),
            roster: None,
            priority: 0,
            budget: None,
        })
        .collect()
}

/// An ordered record of every `service.*` / `answerstore.*` counter and
/// gauge a run emitted — the byte-stable part of a service transcript.
#[derive(Debug, Default)]
struct RecordingSink {
    events: Mutex<Vec<String>>,
}

impl EventSink for RecordingSink {
    fn emit(&self, event: &Event<'_>) {
        let line = match event.kind {
            EventKind::Counter(n) => {
                format!("{}[{}] +{n}", event.name, event.label.unwrap_or(""))
            }
            EventKind::Gauge(v) => format!("{} = {v}", event.name),
            _ => return,
        };
        self.events.lock().expect("recording sink").push(line);
    }
}

/// What one session of a simulated service run produced. `Debug`-format
/// this (or compare fields) for byte-for-byte isolation oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSessionOutcome {
    /// Sorted rendered valid MSPs.
    pub msps: Vec<String>,
    /// Questions the session saw (store-served ones included).
    pub questions: usize,
    /// Questions actually dispatched to the crowd.
    pub crowd_questions: usize,
    /// Dispatch-time answer-store hits.
    pub store_hits: usize,
    /// Terminal status, rendered.
    pub status: String,
}

/// Everything one simulated service run produced.
#[derive(Debug, Clone)]
pub struct ServiceSimOutcome {
    /// The scheduler seed.
    pub seed: u64,
    /// Per-session outcomes, in admission order.
    pub sessions: Vec<ServiceSessionOutcome>,
    /// Ordered service events + per-session summaries; byte-identical
    /// across replays of the same seed.
    pub transcript: String,
}

/// Run a whole multi-session service on the simulation executor: every
/// session's crowd work happens over one simulated [`SessionRuntime`]
/// seeded by `seed`. With `latency`, members answer with seed-derived
/// delay + jitter (nobody excluded), so the sweep explores genuinely
/// different arrival schedules.
pub fn simulate_service(seed: u64, plans: &[ServicePlan], latency: bool) -> ServiceSimOutcome {
    run_service(seed, plans, latency, None, 1)
}

/// [`simulate_service`] with question waves: the service stages up to
/// `wave` questions per session per cycle (speculative prefetches beyond
/// the committed one). The wave-sweep oracle compares these runs against
/// the `wave = 1` baseline.
pub fn simulate_service_waved(
    seed: u64,
    plans: &[ServicePlan],
    latency: bool,
    wave: usize,
) -> ServiceSimOutcome {
    run_service(seed, plans, latency, None, wave)
}

/// The simulated service crowd: `crowd(2)` as-is, or wrapped in
/// seed-derived latency + jitter members (nobody excluded).
fn service_members(seed: u64, latency: bool) -> Vec<Box<dyn CrowdMember>> {
    if latency {
        crowd(2)
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                let base = Duration::from_micros(150 + (mix(seed, i as u64) % 1000));
                let model = ResponseModel::latency(base).with_jitter(Duration::from_micros(300));
                Box::new(UnreliableMember::new(m, model, mix(seed, i as u64)))
                    as Box<dyn CrowdMember>
            })
            .collect()
    } else {
        crowd(2)
    }
}

/// A fresh simulated runtime over [`service_members`].
fn service_runtime(seed: u64, latency: bool) -> SessionRuntime {
    SessionRuntime::new(service_members(seed, latency))
        .question_timeout(LATENCY_TIMEOUT)
        .max_retries(2)
        .simulated(SimConfig::new(seed))
}

/// Aggregator sample for service runs: the crowd has 4 members, and the
/// default sample of 5 would never fill — every pattern would classify
/// insignificant and the MSP oracles would compare empty sets. A sample
/// the crowd can fill keeps them non-vacuous (the harness queries yield
/// 3/2/1 valid MSPs).
pub const SERVICE_AGGREGATOR_SAMPLE: usize = 4;

/// The engine configuration service runs and their reference share.
fn service_config(seed: u64) -> EngineConfig {
    EngineConfig::builder()
        .seed(engine_seed(seed))
        .aggregator_sample(SERVICE_AGGREGATOR_SAMPLE)
        .build()
}

/// The admission spec for one plan of a seeded run.
fn plan_spec(seed: u64, plan: &ServicePlan) -> SessionSpec {
    SessionSpec {
        query: plan.query.clone(),
        threshold: None,
        config: service_config(seed),
        roster: plan.roster.clone(),
        priority: plan.priority,
        budget: plan.budget,
    }
}

fn session_outcome(r: &SessionReport) -> ServiceSessionOutcome {
    ServiceSessionOutcome {
        msps: valid_msp_set(&r.result),
        questions: r.result.stats.total_questions,
        crowd_questions: r.crowd_questions,
        store_hits: r.store_hits,
        status: format!("{:?}", r.status),
    }
}

fn run_service(
    seed: u64,
    plans: &[ServicePlan],
    latency: bool,
    persistence: Option<SharedPersistence>,
    wave: usize,
) -> ServiceSimOutcome {
    let runtime = service_runtime(seed, latency);
    let recorder = Arc::new(RecordingSink::default());
    let engine = Oassis::new(figure1_ontology());
    let sink = Arc::clone(&recorder) as Arc<dyn EventSink>;
    let mut service = match persistence {
        Some(p) => OassisService::start_with_persistence(engine, runtime, sink, p),
        None => OassisService::start_with_sink(engine, runtime, sink),
    };
    service.set_wave_size(wave);
    for plan in plans {
        service.submit(plan_spec(seed, plan)).expect("service plan admits");
    }
    let reports = service.run();
    let sessions: Vec<ServiceSessionOutcome> = reports.iter().map(session_outcome).collect();
    let mut transcript = recorder.events.lock().expect("recording sink").join("\n");
    for (i, s) in sessions.iter().enumerate() {
        transcript.push_str(&format!(
            "\nsession {i}: {} msps, {} questions ({} crowd, {} store), {}",
            s.msps.len(),
            s.questions,
            s.crowd_questions,
            s.store_hits,
            s.status
        ));
    }
    ServiceSimOutcome {
        seed,
        sessions,
        transcript,
    }
}

/// The starvation metric: over the ordered crowd dispatches of a run, the
/// maximum number of *other* sessions' dispatches between two consecutive
/// dispatches of the same session (while it still has questions left).
/// Round-robin scheduling keeps this small; a starving session would let
/// it grow with the finishing sessions' question counts.
pub fn max_dispatch_gap(outcome: &ServiceSimOutcome) -> usize {
    let prefix = format!("{}[", names::SERVICE_QUESTION_DISPATCHED);
    let dispatches: Vec<&str> = outcome
        .transcript
        .lines()
        .filter_map(|l| l.strip_prefix(&prefix))
        .filter_map(|l| l.split(']').next())
        .collect();
    let mut max_gap = 0;
    let mut last_seen: HashMap<&str, usize> = HashMap::new();
    for (i, label) in dispatches.iter().enumerate() {
        if let Some(prev) = last_seen.insert(label, i) {
            max_gap = max_gap.max(i - prev - 1);
        }
    }
    max_gap
}

/// The fairness bound [`check_service_seed`] enforces on instant crowds:
/// between two dispatches of one session, every other live session gets at
/// most a handful of turns (1 per cycle, plus slack for stalled cycles).
pub const STARVATION_BOUND: usize = 16;

/// The sequential single-session reference over the service crowd
/// (`crowd(2)`), cached per engine seed.
fn service_reference(seed: u64) -> Arc<Reference> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<Reference>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = engine_seed(seed);
    if let Some(r) = cache.lock().expect("service reference cache").get(&key) {
        return Arc::clone(r);
    }
    let engine = Oassis::new(figure1_ontology());
    let query = engine.parse(QUERY).expect("the harness query parses");
    let cfg = service_config(seed);
    let space = engine.space(&query, &cfg).expect("space construction");
    let miner = MultiUserMiner::new(&space, SUPPORT, &cfg);
    let mut members = crowd(2);
    let (result, _) = miner.run_direct(&mut members);
    let reference = Arc::new(Reference {
        msps: valid_msp_set(&result),
        questions: result.stats.total_questions,
    });
    cache
        .lock()
        .expect("service reference cache")
        .insert(key, Arc::clone(&reference));
    reference
}

/// Plans for the disjoint-roster isolation oracle: two single-target
/// queries, one over seats {0,1}, one over seats {2,3}.
pub fn disjoint_plans() -> (ServicePlan, ServicePlan) {
    (
        ServicePlan {
            query: SERVICE_QUERIES[1].to_string(),
            roster: Some(vec![0, 1]),
            priority: 0,
            budget: None,
        },
        ServicePlan {
            query: SERVICE_QUERIES[2].to_string(),
            roster: Some(vec![2, 3]),
            priority: 0,
            budget: None,
        },
    )
}

/// Run every service-level oracle for one seed:
///
/// 1. **service-replay** — the same seed twice yields a byte-identical
///    service transcript (events + outcomes);
/// 2. **single-session differential** — one session through the service ≡
///    the synchronous `run_direct` reference (valid-MSP set and question
///    count), the tentpole invariant;
/// 3. **no-starvation** — on an instant crowd, three concurrent sessions
///    stay within [`STARVATION_BOUND`] of each other's dispatch cadence;
/// 4. **disjoint isolation** — two sessions with disjoint rosters produce
///    byte-for-byte the outcomes of running each alone.
pub fn check_service_seed(seed: u64) -> Result<(), OracleFailure> {
    let fail = |oracle: &'static str, detail: String| OracleFailure {
        seed,
        oracle,
        detail,
    };

    let plans = service_plans(3);
    let a = simulate_service(seed, &plans, true);
    let b = simulate_service(seed, &plans, true);
    if a.transcript != b.transcript {
        return Err(fail(
            "service-replay",
            "two runs of the same seed produced different service transcripts".into(),
        ));
    }

    let solo = simulate_service(seed, &service_plans(1), true);
    require_nonvacuous(seed, "service-single-session", solo.sessions.iter().map(|s| &s.msps))?;
    let reference = service_reference(seed);
    let s = &solo.sessions[0];
    if s.msps != reference.msps || s.questions != reference.questions {
        return Err(fail(
            "service-single-session",
            format!(
                "service session diverged from run_direct: {} MSPs / {} questions \
                 vs {} / {}",
                s.msps.len(),
                s.questions,
                reference.msps.len(),
                reference.questions
            ),
        ));
    }
    if s.store_hits != 0 {
        return Err(fail(
            "service-single-session",
            format!("empty store cannot hit, got {}", s.store_hits),
        ));
    }

    let instant = simulate_service(seed, &plans, false);
    let gap = max_dispatch_gap(&instant);
    if gap > STARVATION_BOUND {
        return Err(fail(
            "service-starvation",
            format!("dispatch gap {gap} exceeds bound {STARVATION_BOUND}"),
        ));
    }

    let (plan_a, plan_b) = disjoint_plans();
    // No vacuousness guard here: disjoint 2-seat rosters cannot fill the
    // service-wide aggregator sample, so these MSP sets are legitimately
    // empty — the oracle's point is outcome *identity*, not MSP content.
    let combined = simulate_service(seed, &[plan_a.clone(), plan_b.clone()], true);
    let alone_a = simulate_service(seed, &[plan_a], true);
    let alone_b = simulate_service(seed, &[plan_b], true);
    if combined.sessions[0] != alone_a.sessions[0] {
        return Err(fail(
            "service-isolation",
            format!(
                "session A diverged from its isolated run: {:?} vs {:?}",
                combined.sessions[0], alone_a.sessions[0]
            ),
        ));
    }
    if combined.sessions[1] != alone_b.sessions[0] {
        return Err(fail(
            "service-isolation",
            format!(
                "session B diverged from its isolated run: {:?} vs {:?}",
                combined.sessions[1], alone_b.sessions[0]
            ),
        ));
    }
    Ok(())
}

/// Run [`check_service_seed`] over `seeds`.
pub fn service_sweep(seeds: impl IntoIterator<Item = u64>) -> SweepReport {
    let mut report = SweepReport::default();
    for seed in seeds {
        match check_service_seed(seed) {
            Ok(()) => report.passed += 1,
            Err(failure) => report.failures.push(failure),
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Wave-sweep oracle (PR 8): batched question waves must be invisible to the
// mining outcome. A wave-prefetched answer served at commit time is accounted
// exactly like a dispatch, so sweeping `wave_size` over the same seed must
// reproduce the baseline's valid-MSP sets and stage-time question counts —
// and, on disjoint rosters (no cross-session store traffic), the complete
// per-session outcome including crowd-question counts.
// ---------------------------------------------------------------------------

/// The wave sizes [`check_wave_seed`] sweeps. Index 0 is the baseline.
pub const WAVE_SIZES: &[usize] = &[1, 4, 16];

/// Run the wave-equivalence oracles for one seed:
///
/// 1. **wave-replay** — a waved run of the same seed replays to a
///    byte-identical transcript;
/// 2. **wave-equivalence** — three overlapping-roster sessions produce the
///    same valid-MSP sets, stage-time question counts and statuses at every
///    wave size (store-hit timing may shift, so crowd/store splits may not);
/// 3. **wave-disjoint** — two disjoint-roster sessions produce *identical*
///    outcomes at every wave size, crowd-question counts included.
pub fn check_wave_seed(seed: u64) -> Result<(), OracleFailure> {
    let fail = |oracle: &'static str, detail: String| OracleFailure {
        seed,
        oracle,
        detail,
    };

    let plans = service_plans(3);
    let base = simulate_service(seed, &plans, true);
    require_nonvacuous(seed, "wave-equivalence", base.sessions.iter().map(|s| &s.msps))?;
    for &wave in &WAVE_SIZES[1..] {
        let waved = simulate_service_waved(seed, &plans, true, wave);
        let again = simulate_service_waved(seed, &plans, true, wave);
        if waved.transcript != again.transcript {
            return Err(fail(
                "wave-replay",
                format!("wave {wave}: two runs of the same seed produced different transcripts"),
            ));
        }
        for (i, (w, b)) in waved.sessions.iter().zip(&base.sessions).enumerate() {
            if w.msps != b.msps || w.questions != b.questions || w.status != b.status {
                return Err(fail(
                    "wave-equivalence",
                    format!(
                        "wave {wave} session {i} diverged from wave 1: \
                         {} MSPs / {} questions / {} vs {} / {} / {}",
                        w.msps.len(),
                        w.questions,
                        w.status,
                        b.msps.len(),
                        b.questions,
                        b.status
                    ),
                ));
            }
        }
    }

    let (plan_a, plan_b) = disjoint_plans();
    let disjoint = [plan_a, plan_b];
    let base = simulate_service(seed, &disjoint, true);
    for &wave in &WAVE_SIZES[1..] {
        let waved = simulate_service_waved(seed, &disjoint, true, wave);
        if waved.sessions != base.sessions {
            return Err(fail(
                "wave-disjoint",
                format!(
                    "wave {wave} disjoint outcomes diverged from wave 1: {:?} vs {:?}",
                    waved.sessions, base.sessions
                ),
            ));
        }
    }
    Ok(())
}

/// Run [`check_wave_seed`] over `seeds`.
pub fn wave_sweep(seeds: impl IntoIterator<Item = u64>) -> SweepReport {
    let mut report = SweepReport::default();
    for seed in seeds {
        match check_wave_seed(seed) {
            Ok(()) => report.passed += 1,
            Err(failure) => report.failures.push(failure),
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Crash-restart oracle (PR 7): run a *durable* service over an in-memory WAL
// under the virtual clock, kill it at any append index, recover from the
// crash image, and prove the finished state matches the uninterrupted run.
// ---------------------------------------------------------------------------

/// Snapshot interval for durable simulation runs — small enough that the
/// kill-point sweep crosses several log compactions.
pub const SIM_SNAPSHOT_EVERY: u64 = 8;

/// A durable service run: [`simulate_service`] with an [`InMemory`]
/// persistence attached. `log` keeps the complete append history, so the
/// crash sweep can reconstruct the durable image at any index via
/// [`InMemory::crashed_at`].
pub struct DurableRun {
    /// The uninterrupted run's outcome (identical to the plain run's —
    /// the durable-transparency oracle).
    pub outcome: ServiceSimOutcome,
    /// The WAL the run appended to, with full history and snapshot points.
    pub log: Arc<Mutex<InMemory>>,
}

/// [`simulate_service`] with durability: every committed crowd answer,
/// admission and close is appended to an [`InMemory`] WAL, compacted every
/// `snapshot_every` records (`None` = never).
pub fn simulate_durable_service(
    seed: u64,
    plans: &[ServicePlan],
    latency: bool,
    snapshot_every: Option<u64>,
) -> DurableRun {
    let mut mem = InMemory::new();
    if let Some(every) = snapshot_every {
        mem = mem.with_snapshot_every(every);
    }
    let log = Arc::new(Mutex::new(mem));
    let persistence: SharedPersistence = Arc::clone(&log) as SharedPersistence;
    let outcome = run_service(seed, plans, latency, Some(persistence), 1);
    DurableRun { outcome, log }
}

/// Kill points for one crash sweep over a log of `len` appends: both ends,
/// the quartiles, and one seed-derived index (so the sweep as a whole
/// visits arbitrary offsets).
fn kill_points(seed: u64, len: usize) -> Vec<usize> {
    let mut ks = vec![
        0,
        len / 4,
        len / 2,
        3 * len / 4,
        len,
        (mix(seed, 0xC4A5) as usize) % (len + 1),
    ];
    ks.sort_unstable();
    ks.dedup();
    ks
}

/// Finish an interrupted durable run: take the durable image as of append
/// `k` ([`InMemory::crashed_at`]), recover a fresh service from it
/// ([`OassisService::recover_with`]), resume every interrupted session,
/// re-submit the plans whose admission the crash predates, and run to
/// completion.
///
/// Returns one outcome per plan, in plan order. `None` means the session
/// closed *before* the crash: its report was already delivered by the
/// interrupted process, so recovery (correctly) does not re-run it — the
/// uninterrupted run's outcome stands.
pub fn finish_after_crash(
    seed: u64,
    plans: &[ServicePlan],
    latency: bool,
    log: &InMemory,
    k: usize,
) -> Vec<Option<ServiceSessionOutcome>> {
    // The append history is ground truth (compaction never rewrites it):
    // which sessions had been admitted, and which had closed, by index k.
    let prefix = &log.history()[..k];
    let admitted: HashSet<u64> = prefix
        .iter()
        .filter_map(|r| match r {
            WalRecord::Admit { session, .. } => Some(*session),
            _ => None,
        })
        .collect();

    let persistence: SharedPersistence = Arc::new(Mutex::new(log.crashed_at(k)));
    let engine = Oassis::new(figure1_ontology());
    let runtime = service_runtime(seed, latency);
    let (mut service, recovered) =
        OassisService::recover_with(engine, runtime, oassis_obs::null_sink(), persistence)
            .expect("recovery from a crash image succeeds");

    // Sessions are admitted in plan order, so plan index == original id.
    let mut plan_of: HashMap<u64, usize> = HashMap::new();
    for session in recovered {
        let plan = session.original.0 as usize;
        let id = service.resume(session).expect("resumption admits");
        plan_of.insert(id.0, plan);
    }
    for (i, plan) in plans.iter().enumerate() {
        if !admitted.contains(&(i as u64)) {
            let id = service
                .submit(plan_spec(seed, plan))
                .expect("re-submission admits");
            plan_of.insert(id.0, i);
        }
    }

    let reports = service.run();
    let mut out: Vec<Option<ServiceSessionOutcome>> = vec![None; plans.len()];
    for report in &reports {
        out[plan_of[&report.id.0]] = Some(session_outcome(report));
    }
    out
}

/// Committed crowd answers attributed to session `s` in the first `k`
/// appends — the questions the interrupted run had already paid for.
fn committed_answers(log: &InMemory, s: u64, k: usize) -> usize {
    log.history()[..k]
        .iter()
        .filter(|r| matches!(r, WalRecord::Answer { session: Some(id), .. } if *id == s))
        .count()
}

/// Run every durability oracle for one seed:
///
/// 1. **durable-transparency** — attaching the WAL changes nothing
///    observable: the durable run's per-session outcomes are identical to
///    the plain [`simulate_service`] run's;
/// 2. **durable-replay** — the same seed twice appends a byte-identical
///    record history (the WAL itself is deterministic);
/// 3. **durable-crash-msp** — for overlapping sessions, killing the
///    service at any sampled append index and recovering yields exactly
///    the uninterrupted run's valid-MSP set per plan;
/// 4. **durable-crash-counts** — for disjoint-roster sessions, the MSPs
///    *and* the per-plan crowd-question counts are preserved: answers
///    committed before the crash plus questions the resumption dispatches
///    equal the uninterrupted run's count (crashes never re-buy answers,
///    and never skip unpaid ones).
pub fn check_durability_seed(seed: u64) -> Result<(), OracleFailure> {
    let fail = |oracle: &'static str, detail: String| OracleFailure {
        seed,
        oracle,
        detail,
    };

    let plans = service_plans(3);
    let plain = simulate_service(seed, &plans, true);
    let durable = simulate_durable_service(seed, &plans, true, Some(SIM_SNAPSHOT_EVERY));
    if durable.outcome.sessions != plain.sessions {
        return Err(fail(
            "durable-transparency",
            "attaching the WAL changed session outcomes".into(),
        ));
    }
    require_nonvacuous(
        seed,
        "durable-transparency",
        durable.outcome.sessions.iter().map(|s| &s.msps),
    )?;

    let again = simulate_durable_service(seed, &plans, true, Some(SIM_SNAPSHOT_EVERY));
    {
        let a = durable.log.lock().expect("wal");
        let b = again.log.lock().expect("wal");
        if a.history() != b.history() {
            return Err(fail(
                "durable-replay",
                format!(
                    "two runs of the same seed appended different histories \
                     ({} vs {} records)",
                    a.history_len(),
                    b.history_len()
                ),
            ));
        }
    }

    let log = durable.log.lock().expect("wal");
    for k in kill_points(seed, log.history_len()) {
        let finished = finish_after_crash(seed, &plans, true, &log, k);
        for (i, f) in finished.iter().enumerate() {
            let expected = &durable.outcome.sessions[i].msps;
            let got = f.as_ref().map_or(expected, |o| &o.msps);
            if got != expected {
                return Err(fail(
                    "durable-crash-msp",
                    format!(
                        "kill at {k}/{}: plan {i} recovered {} MSPs, expected {}",
                        log.history_len(),
                        got.len(),
                        expected.len()
                    ),
                ));
            }
        }
    }
    drop(log);

    let (plan_a, plan_b) = disjoint_plans();
    let dplans = vec![plan_a, plan_b];
    // Disjoint 2-seat rosters cannot fill the aggregator sample, so their
    // MSP sets are legitimately empty — this oracle is about crowd-question
    // *count* conservation, not MSP content; no vacuousness guard.
    let drun = simulate_durable_service(seed, &dplans, true, Some(SIM_SNAPSHOT_EVERY));
    let dlog = drun.log.lock().expect("wal");
    for k in kill_points(mix(seed, 1), dlog.history_len()) {
        let finished = finish_after_crash(seed, &dplans, true, &dlog, k);
        for (i, f) in finished.iter().enumerate() {
            let expected = &drun.outcome.sessions[i];
            let Some(got) = f else { continue }; // closed pre-crash: final
            if got.msps != expected.msps {
                return Err(fail(
                    "durable-crash-counts",
                    format!("kill at {k}: plan {i} MSPs diverged"),
                ));
            }
            let combined = committed_answers(&dlog, i as u64, k) + got.crowd_questions;
            if combined != expected.crowd_questions {
                return Err(fail(
                    "durable-crash-counts",
                    format!(
                        "kill at {k}/{}: plan {i} paid {} crowd questions \
                         (committed + resumed), uninterrupted paid {}",
                        dlog.history_len(),
                        combined,
                        expected.crowd_questions
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Run [`check_durability_seed`] over `seeds`.
pub fn durability_sweep(seeds: impl IntoIterator<Item = u64>) -> SweepReport {
    let mut report = SweepReport::default();
    for seed in seeds {
        match check_durability_seed(seed) {
            Ok(()) => report.passed += 1,
            Err(failure) => report.failures.push(failure),
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Protocol crash/partition oracle (PR 9): serve a durable service through the
// `oassis-net` wire protocol over the deterministic `SimNet`, kill the server
// at *every* protocol-event index (and once more under injected frame
// faults), recover it from the live WAL image, reconnect the clients with
// `Resume`/tokened `Submit`, and require the terminal valid-MSP sets and
// crowd-question counts to match the uninterrupted run exactly.
// ---------------------------------------------------------------------------

/// Client steps between two `Poll`s of a running session — keeps the
/// protocol-event count (and with it the kill sweep) small without
/// starving the progress stream.
pub const NET_POLL_BACKOFF: u32 = 8;

/// Base for the per-plan `Submit` idempotency tokens (plan `i` uses
/// `NET_TOKEN_BASE + i`), also how the oracle attributes WAL records to
/// plans without trusting client-side session-id bookkeeping.
pub const NET_TOKEN_BASE: u64 = 0x0A55_1500;

/// Virtual-tick budget for one networked run; exceeded only by a genuine
/// livelock, which the harness turns into a panic with context.
const NET_MAX_TICKS: u64 = 200_000;

/// Service scheduling cycles per tick, so mining outpaces polling and the
/// event clock stays protocol-dominated.
const NET_PUMPS_PER_TICK: u32 = 4;

/// Ticks between a kill and the recovered server accepting connections.
const NET_RESTART_DELAY: u64 = 3;

/// Aggregator sample for the networked oracles' plans. They run the
/// disjoint 2-seat rosters (for isolation-exact crowd-question counts),
/// and [`SERVICE_AGGREGATOR_SAMPLE`] (4) could never fill from 2 seats —
/// every MSP set would be vacuously empty and the MSP-identity oracles
/// would compare nothing. Sampling both roster members reproduces the
/// full-crowd aggregate exactly: the simulated crowd is two copies of the
/// same member pair, so one copy's answers average to the whole crowd's.
pub const NET_AGGREGATOR_SAMPLE: usize = 2;

/// [`plan_spec`] with the roster-fillable [`NET_AGGREGATOR_SAMPLE`].
fn net_plan_spec(seed: u64, plan: &ServicePlan) -> SessionSpec {
    let mut spec = plan_spec(seed, plan);
    spec.config.aggregator_sample = NET_AGGREGATOR_SAMPLE;
    spec
}

/// The served runs' in-process twin: the same plans with the same
/// [`net_plan_spec`] specs, submitted straight to an [`OassisService`]
/// with no wire in between. [`check_net_seed`]'s transparency oracle
/// compares against this (not [`simulate_service`], whose specs use the
/// service-wide aggregator sample).
fn run_net_inprocess(seed: u64, plans: &[ServicePlan]) -> Vec<ServiceSessionOutcome> {
    let mut service = OassisService::start_with_sink(
        Oassis::new(figure1_ontology()),
        service_runtime(seed, false),
        oassis_obs::null_sink(),
    );
    for plan in plans {
        service
            .submit(net_plan_spec(seed, plan))
            .expect("net plan admits");
    }
    service.run().iter().map(session_outcome).collect()
}

/// What one networked client observed at its session's end (terminal
/// `Update` frame): the authoritative valid-MSP set and the cost counter
/// the crash oracle compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetSessionOutcome {
    /// Terminal status, rendered like [`ServiceSessionOutcome::status`].
    pub status: String,
    /// Crowd questions the terminal session paid for itself (a resumed
    /// session counts only post-resume dispatches).
    pub crowd_questions: u64,
    /// Sorted rendered valid MSPs.
    pub msps: Vec<String>,
}

/// Everything one networked run produced.
pub struct NetRunOutcome {
    /// Per-plan terminal outcomes, in plan order.
    pub outcomes: Vec<NetSessionOutcome>,
    /// Protocol events (processed request frames) the *first* server
    /// incarnation saw — the kill-sweep domain for uninterrupted runs.
    pub events: u64,
    /// WAL length at the kill (`None` for uninterrupted runs).
    pub kill_len: Option<usize>,
    /// The WAL both server incarnations appended to.
    pub log: Arc<Mutex<InMemory>>,
    /// Unexpected `Error` frames any client received (empty on a healthy
    /// run; the oracles fail on any entry).
    pub protocol_errors: Vec<String>,
}

/// One simulated protocol client driving a plan end-to-end:
/// `Hello → Submit(token) → Poll…` with reconnect-and-`Resume` (or
/// re-`Submit` under the same token) whenever the connection dies.
struct NetDriver {
    spec: AdmitSpec,
    client: NetClient<SimTransport>,
    greeted: bool,
    needs_reconnect: bool,
    /// First session id this client was admitted as — the `Resume` target
    /// (the server maps a superseded id to its successor).
    original: Option<u64>,
    /// Session id to `Poll` (updated by `Admitted`/`Resumed`).
    current: Option<u64>,
    /// Whether `current` is known to this *connection* (a fresh connection
    /// re-attaches via `Resume` before polling).
    attached: bool,
    backoff: u32,
    outcome: Option<NetSessionOutcome>,
    protocol_errors: Vec<String>,
}

impl NetDriver {
    fn new(spec: AdmitSpec, transport: SimTransport) -> Self {
        NetDriver {
            spec,
            client: NetClient::new(transport),
            greeted: false,
            needs_reconnect: false,
            original: None,
            current: None,
            attached: false,
            backoff: 0,
            outcome: None,
            protocol_errors: Vec::new(),
        }
    }

    /// One client step: reconnect if needed, issue the next request of the
    /// conversation if idle, then drive the pending request.
    fn step(&mut self) {
        if self.outcome.is_some() {
            return;
        }
        if self.needs_reconnect {
            if self.client.reconnect().is_err() {
                return; // server still down; retry next tick
            }
            self.needs_reconnect = false;
            self.greeted = false;
            self.attached = false;
        }
        if !self.client.is_pending() {
            if self.backoff > 0 {
                self.backoff -= 1;
                return;
            }
            let req = if !self.greeted {
                Request::Hello {
                    version: PROTOCOL_VERSION,
                }
            } else if let (Some(original), false) = (self.original, self.attached) {
                Request::Resume { session: original }
            } else if let Some(current) = self.current {
                Request::Poll { session: current }
            } else {
                Request::Submit {
                    spec: self.spec.clone(),
                }
            };
            if self.client.request(&req).is_err() {
                self.needs_reconnect = true;
                return;
            }
        }
        match self.client.step() {
            Ok(Some(batch)) => self.absorb(batch),
            Ok(None) => {}
            Err(_) => self.needs_reconnect = true,
        }
    }

    fn absorb(&mut self, batch: Vec<Response>) {
        for resp in batch {
            match resp {
                Response::Welcome { .. } => self.greeted = true,
                Response::Admitted { session } => {
                    if self.original.is_none() {
                        self.original = Some(session);
                    }
                    self.current = Some(session);
                    self.attached = true;
                }
                Response::Resumed { session, .. } => {
                    self.current = Some(session);
                    self.attached = true;
                }
                // The Answer stream is best-effort progress reporting; the
                // terminal Update is what the oracles compare.
                Response::Answer { .. } => {}
                Response::Update {
                    status,
                    crowd_questions,
                    msps,
                    ..
                } => {
                    if status == WireStatus::Running {
                        self.backoff = NET_POLL_BACKOFF;
                    } else {
                        self.outcome = Some(NetSessionOutcome {
                            status: format!("{status:?}"),
                            crowd_questions,
                            msps,
                        });
                    }
                }
                Response::Error { detail } => {
                    if detail.contains("awaits Resume") {
                        // Raced a restart without noticing the disconnect:
                        // re-attach before the next poll.
                        self.attached = false;
                    } else {
                        self.protocol_errors.push(detail);
                    }
                }
                Response::Bye => {}
            }
        }
    }
}

/// Run `plans` as concurrent protocol clients of one durable served
/// service over a seeded [`SimNet`]. With `kill_at = Some(k)` the server
/// process dies immediately *after* processing its `k`-th request frame
/// (`k = 0`: before its first) — state mutated and WAL appended, response
/// discarded, every connection severed — and is restarted a few ticks
/// later by recovering from the same WAL; clients reconnect and resume.
pub fn run_net(
    seed: u64,
    plans: &[ServicePlan],
    faults: FaultConfig,
    kill_at: Option<u64>,
) -> NetRunOutcome {
    let net = SimNet::new(seed).with_faults(faults);
    let log = Arc::new(Mutex::new(
        InMemory::new().with_snapshot_every(SIM_SNAPSHOT_EVERY),
    ));
    let persistence: SharedPersistence = Arc::clone(&log) as SharedPersistence;
    let mut server = Some(NetServer::new(OassisService::start_with_persistence(
        Oassis::new(figure1_ontology()),
        service_runtime(seed, false),
        oassis_obs::null_sink(),
        persistence,
    )));

    let mut drivers: Vec<NetDriver> = plans
        .iter()
        .enumerate()
        .map(|(i, plan)| {
            let spec = net_plan_spec(seed, plan).to_admit(Some(NET_TOKEN_BASE + i as u64));
            NetDriver::new(spec, net.connect().expect("server starts alive"))
        })
        .collect();

    let mut events = 0u64;
    let mut kill_len: Option<usize> = None;
    let mut killed = false;
    let mut restart_at: Option<u64> = None;

    if kill_at == Some(0) {
        killed = true;
        kill_len = Some(log.lock().expect("wal").history_len());
        net.kill_server();
        server = None;
        restart_at = Some(NET_RESTART_DELAY);
    }

    for tick in 0..NET_MAX_TICKS {
        if drivers.iter().all(|d| d.outcome.is_some()) {
            break;
        }
        for driver in &mut drivers {
            driver.step();
        }
        net.tick();

        if server.is_none() && restart_at.is_some_and(|at| tick >= at) {
            let persistence: SharedPersistence = Arc::clone(&log) as SharedPersistence;
            // The recovered sessions are deliberately *not* auto-resumed:
            // in the protocol world resumption is client-driven (`Resume`,
            // or a retransmitted tokened `Submit`).
            let (service, _recovered) = OassisService::recover_with(
                Oassis::new(figure1_ontology()),
                service_runtime(seed, false),
                oassis_obs::null_sink(),
                persistence,
            )
            .expect("recovery from the live WAL image succeeds");
            server = Some(NetServer::new(service));
            net.restart_server();
            restart_at = None;
        }

        while server.is_some() {
            let Some((conn, line)) = net.server_recv() else {
                break;
            };
            let srv = server.as_mut().expect("checked above");
            let before = srv.events_processed();
            let batch = srv.on_line(conn, &line);
            let after = srv.events_processed();
            if !killed && after > before && kill_at == Some(after) {
                // Die *after* the frame took effect, *before* answering —
                // the client cannot tell a lost request from a lost
                // response, and only idempotency keeps the retry safe.
                killed = true;
                kill_len = Some(log.lock().expect("wal").history_len());
                net.kill_server();
                server = None;
                restart_at = Some(tick + NET_RESTART_DELAY);
                break;
            }
            for resp in &batch {
                net.server_send(conn, resp);
            }
        }
        if let Some(srv) = server.as_mut() {
            for _ in 0..NET_PUMPS_PER_TICK {
                if !srv.pump() {
                    break;
                }
            }
            if !killed {
                events = srv.events_processed();
            }
        }
    }

    let outcomes: Vec<NetSessionOutcome> = drivers
        .iter()
        .enumerate()
        .map(|(i, d)| {
            d.outcome.clone().unwrap_or_else(|| {
                panic!(
                    "seed {seed}: plan {i} never reached a terminal Update within \
                     {NET_MAX_TICKS} ticks (kill_at {kill_at:?}, faults {faults:?})"
                )
            })
        })
        .collect();
    let protocol_errors = drivers
        .iter()
        .flat_map(|d| d.protocol_errors.iter().cloned())
        .collect();
    NetRunOutcome {
        outcomes,
        events,
        kill_len,
        log,
        protocol_errors,
    }
}

/// Every session id the WAL's first `upto` records admitted under `token`
/// (the original and any resumption successors).
fn token_chain(log: &InMemory, upto: usize, token: u64) -> HashSet<u64> {
    log.history()[..upto]
        .iter()
        .filter_map(|r| match r {
            WalRecord::Admit { session, spec, .. } if spec.token == Some(token) => Some(*session),
            _ => None,
        })
        .collect()
}

/// Check one killed run against the uninterrupted baseline: identical
/// valid-MSP sets and statuses per plan, no unexpected protocol errors,
/// and exact crowd-question conservation — answers committed to the WAL
/// before the kill plus questions the resumed session paid equal the
/// uninterrupted run's count (a session that closed *before* the kill
/// must simply report the uninterrupted count).
fn verify_net_crash(
    seed: u64,
    oracle: &'static str,
    base: &NetRunOutcome,
    killed: &NetRunOutcome,
    k: u64,
) -> Result<(), OracleFailure> {
    let fail = |detail: String| OracleFailure {
        seed,
        oracle,
        detail,
    };
    if let Some(e) = killed.protocol_errors.first() {
        return Err(fail(format!("kill at event {k}: protocol error: {e}")));
    }
    let kill_len = killed
        .kill_len
        .expect("a killed run records its WAL length at the kill");
    let log = killed.log.lock().expect("wal");
    for (i, (expected, got)) in base.outcomes.iter().zip(&killed.outcomes).enumerate() {
        if got.msps != expected.msps {
            return Err(fail(format!(
                "kill at event {k}: plan {i} recovered {} MSPs, expected {}",
                got.msps.len(),
                expected.msps.len()
            )));
        }
        if got.status != expected.status {
            return Err(fail(format!(
                "kill at event {k}: plan {i} finished {}, expected {}",
                got.status, expected.status
            )));
        }
        let chain = token_chain(&log, kill_len, NET_TOKEN_BASE + i as u64);
        let closed_pre = log.history()[..kill_len].iter().any(
            |r| matches!(r, WalRecord::Close { session, .. } if chain.contains(session)),
        );
        let committed = log.history()[..kill_len]
            .iter()
            .filter(
                |r| matches!(r, WalRecord::Answer { session: Some(s), .. } if chain.contains(s)),
            )
            .count() as u64;
        let paid = if closed_pre {
            // Closed before the kill: the terminal Update replays the
            // durable Close record's full count; the committed answers
            // *are* that count, not an addition to it.
            got.crowd_questions
        } else {
            committed + got.crowd_questions
        };
        if paid != expected.crowd_questions {
            return Err(fail(format!(
                "kill at event {k} (wal {kill_len}): plan {i} paid {paid} crowd \
                 questions ({committed} committed + {} resumed{}), uninterrupted \
                 paid {}",
                got.crowd_questions,
                if closed_pre { ", closed pre-kill" } else { "" },
                expected.crowd_questions
            )));
        }
    }
    Ok(())
}

/// Run every wire-protocol oracle for one seed, over the disjoint-roster
/// plan pair (so crowd-question counts are isolation-exact):
///
/// 1. **net-transparency** — the uninterrupted served run produces exactly
///    its in-process twin's outcomes (MSPs, crowd-question counts,
///    statuses — see [`run_net_inprocess`]), with no stray `Error` frames,
///    and the MSP sets are non-vacuous (the net plans' aggregator sample
///    is roster-fillable precisely so this bites);
/// 2. **net-replay** — the same seed twice yields identical outcomes,
///    protocol-event counts and WAL histories;
/// 3. **net-crash** — for every protocol-event index `k` in `0..=events`,
///    killing the server right after frame `k` and recovering yields the
///    uninterrupted outcomes, with crowd-question conservation;
/// 4. **net-faults** — under injected frame drops, duplicates, delays and
///    severs ([`FaultConfig::light`]), the run still converges to the
///    uninterrupted outcomes — and so does a mid-run kill on top of the
///    faults.
pub fn check_net_seed(seed: u64) -> Result<(), OracleFailure> {
    let fail = |oracle: &'static str, detail: String| OracleFailure {
        seed,
        oracle,
        detail,
    };
    let (plan_a, plan_b) = disjoint_plans();
    let plans = vec![plan_a, plan_b];

    let base = run_net(seed, &plans, FaultConfig::default(), None);
    if let Some(e) = base.protocol_errors.first() {
        return Err(fail("net-transparency", format!("protocol error: {e}")));
    }
    require_nonvacuous(
        seed,
        "net-transparency",
        base.outcomes.iter().map(|o| &o.msps),
    )?;
    let inproc = run_net_inprocess(seed, &plans);
    for (i, (n, p)) in base.outcomes.iter().zip(&inproc).enumerate() {
        if n.msps != p.msps
            || n.crowd_questions != p.crowd_questions as u64
            || n.status != p.status
        {
            return Err(fail(
                "net-transparency",
                format!(
                    "plan {i} served ({} MSPs, {} crowd, {}) vs in-process \
                     ({} MSPs, {} crowd, {})",
                    n.msps.len(),
                    n.crowd_questions,
                    n.status,
                    p.msps.len(),
                    p.crowd_questions,
                    p.status
                ),
            ));
        }
    }

    let again = run_net(seed, &plans, FaultConfig::default(), None);
    if again.outcomes != base.outcomes || again.events != base.events {
        return Err(fail(
            "net-replay",
            format!(
                "two served runs of the same seed diverged ({} vs {} events)",
                base.events, again.events
            ),
        ));
    }
    {
        let a = base.log.lock().expect("wal");
        let b = again.log.lock().expect("wal");
        if a.history() != b.history() {
            return Err(fail(
                "net-replay",
                format!(
                    "two served runs appended different WAL histories \
                     ({} vs {} records)",
                    a.history_len(),
                    b.history_len()
                ),
            ));
        }
    }

    assert!(base.events > 0, "a served run must process protocol events");
    for k in 0..=base.events {
        let killed = run_net(seed, &plans, FaultConfig::default(), Some(k));
        verify_net_crash(seed, "net-crash", &base, &killed, k)?;
    }

    let faulted = run_net(seed, &plans, FaultConfig::light(), None);
    if let Some(e) = faulted.protocol_errors.first() {
        return Err(fail("net-faults", format!("protocol error: {e}")));
    }
    for (i, (n, b)) in faulted.outcomes.iter().zip(&base.outcomes).enumerate() {
        if n != b {
            return Err(fail(
                "net-faults",
                format!("plan {i} diverged under frame faults: {n:?} vs {b:?}"),
            ));
        }
    }
    let mid = (faulted.events / 2).max(1);
    let faulted_killed = run_net(seed, &plans, FaultConfig::light(), Some(mid));
    verify_net_crash(seed, "net-faults", &base, &faulted_killed, mid)?;

    Ok(())
}

/// Run [`check_net_seed`] over `seeds`.
pub fn net_sweep(seeds: impl IntoIterator<Item = u64>) -> SweepReport {
    let mut report = SweepReport::default();
    for seed in seeds {
        match check_net_seed(seed) {
            Ok(()) => report.passed += 1,
            Err(failure) => report.failures.push(failure),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness catches a deliberately injected schedule-dependent bug
    /// (prefetch answers swapped on non-FIFO decisions — exactly the
    /// corruption a lost-ordering bug would cause) and shrinks the failing
    /// schedule to a handful of scheduling decisions.
    #[test]
    fn injected_prefetch_swap_is_caught_and_shrunk() {
        let opts = SimOptions {
            faults: FaultPlan::Latency,
            chaos: Some(SimChaos::SwapPrefetchAnswers),
            ..SimOptions::default()
        };
        let failing_seed = (0..64)
            .find(|&seed| diverges_from_reference(&simulate(seed, &opts)))
            .expect("the injected bug must be caught within 64 seeds");
        let shrunk = shrink(failing_seed, &opts, diverges_from_reference)
            .expect("the failing seed shrinks");
        assert!(
            shrunk.non_fifo >= 1,
            "the bug only fires on non-FIFO decisions"
        );
        assert!(
            shrunk.non_fifo <= 5,
            "minimal fault trace too large: {} non-FIFO decisions",
            shrunk.non_fifo
        );
        // The minimal schedule must still replay deterministically.
        let replay = simulate(
            failing_seed,
            &SimOptions {
                script: Some(shrunk.script.clone()),
                ..opts.clone()
            },
        );
        assert_eq!(replay.transcript, shrunk.transcript);
    }

    /// The wave-sweep oracle must not be vacuous: at `wave_size > 1` the
    /// service really stages speculative prefetches and serves some staged
    /// questions from the wave cache (all counted like dispatches).
    #[test]
    fn waved_runs_actually_stage_and_hit() {
        let plans = service_plans(3);
        let staged = (0..16).any(|seed| {
            let waved = simulate_service_waved(seed, &plans, true, 16);
            waved.transcript.contains(names::WAVE_STAGED)
        });
        assert!(staged, "no seed in 0..16 ever staged a wave");
        let hit = (0..16).any(|seed| {
            let waved = simulate_service_waved(seed, &plans, true, 16);
            waved.transcript.contains(names::WAVE_HIT)
        });
        assert!(hit, "no seed in 0..16 ever served a staged answer");
    }

    #[test]
    fn chaos_off_passes_the_same_seeds() {
        let report = sweep(0..4);
        assert!(
            report.failures.is_empty(),
            "clean sweep failed: {}",
            report.failures[0]
        );
        assert_eq!(report.passed, 4);
    }
}
