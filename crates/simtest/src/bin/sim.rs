//! The schedule-exploration driver.
//!
//! ```text
//! sim sweep [N]      run the oracle suite over seeds 0..N (default 256;
//!                    OASSIS_SIM_SEEDS overrides); failing seeds print a
//!                    one-line repro command and exit non-zero
//! sim service-sweep [N]
//!                    run the multi-session service oracles (replay,
//!                    single-session differential, starvation bound,
//!                    disjoint-roster isolation) over seeds 0..N
//!                    (default 64; OASSIS_SIM_SEEDS overrides)
//! sim durability-sweep [N]
//!                    run the crash-restart oracles (WAL transparency,
//!                    log replay determinism, kill-at-any-index recovery
//!                    for overlapping and disjoint sessions) over seeds
//!                    0..N (default 64; OASSIS_SIM_SEEDS overrides)
//! sim wave-sweep [N]
//!                    run the question-wave oracles (waved replay,
//!                    wave_size in {1,4,16} equivalence on overlapping
//!                    rosters, full-outcome identity on disjoint rosters)
//!                    over seeds 0..N (default 64; OASSIS_SIM_SEEDS
//!                    overrides)
//! sim net-sweep [N]
//!                    run the wire-protocol oracles (served-run
//!                    transparency vs the in-process service, replay,
//!                    kill-the-server-at-every-protocol-event recovery
//!                    with Resume/tokened-Submit reconnects, and the same
//!                    under injected frame drop/dup/delay/sever faults)
//!                    over seeds 0..N (default 64; OASSIS_SIM_SEEDS
//!                    overrides)
//! sim repro [SEED]   replay one seed (OASSIS_SIM_SEED or the argument),
//!                    print its transcript tail, run every oracle, and on
//!                    failure shrink the schedule to a minimal fault trace
//! sim bench [N]      measure harness throughput (seeds/sec over N seeds,
//!                    default 64) and write BENCH_simtest.json
//! ```

use std::process::ExitCode;
use std::time::Instant;

use oassis_simtest::{
    check_durability_seed, check_net_seed, check_seed, check_service_seed, check_wave_seed,
    diverges_from_reference, durability_sweep, net_sweep, repro_command, service_sweep, shrink,
    simulate, sweep, wave_sweep, SimOptions, WAVE_SIZES,
};

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn run_sweep(n: u64) -> ExitCode {
    println!("sim sweep: {n} seeds, faults on, 3 runs/seed");
    let start = Instant::now();
    let report = sweep(0..n);
    let secs = start.elapsed().as_secs_f64();
    for failure in &report.failures {
        println!("FAIL {failure}");
    }
    println!(
        "sim sweep: {}/{} seeds passed in {:.2}s ({:.1} seeds/s)",
        report.passed,
        n,
        secs,
        n as f64 / secs.max(1e-9),
    );
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_service_sweep(n: u64) -> ExitCode {
    println!("sim service-sweep: {n} seeds, 7 service runs/seed (replay x2, differential, starvation, isolation x3)");
    let start = Instant::now();
    let report = service_sweep(0..n);
    let secs = start.elapsed().as_secs_f64();
    for failure in &report.failures {
        println!("FAIL {failure}");
    }
    println!(
        "sim service-sweep: {}/{} seeds passed in {:.2}s ({:.1} seeds/s)",
        report.passed,
        n,
        secs,
        n as f64 / secs.max(1e-9),
    );
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_durability_sweep(n: u64) -> ExitCode {
    println!(
        "sim durability-sweep: {n} seeds, kill-at-any-index crash recovery \
         (transparency, replay, overlap MSPs, disjoint MSPs + crowd counts)"
    );
    let start = Instant::now();
    let report = durability_sweep(0..n);
    let secs = start.elapsed().as_secs_f64();
    for failure in &report.failures {
        println!("FAIL {failure}");
    }
    println!(
        "sim durability-sweep: {}/{} seeds passed in {:.2}s ({:.1} seeds/s)",
        report.passed,
        n,
        secs,
        n as f64 / secs.max(1e-9),
    );
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_wave_sweep(n: u64) -> ExitCode {
    println!(
        "sim wave-sweep: {n} seeds, wave sizes {WAVE_SIZES:?} \
         (waved replay x2, overlap equivalence, disjoint identity)"
    );
    let start = Instant::now();
    let report = wave_sweep(0..n);
    let secs = start.elapsed().as_secs_f64();
    for failure in &report.failures {
        println!("FAIL {failure}");
    }
    println!(
        "sim wave-sweep: {}/{} seeds passed in {:.2}s ({:.1} seeds/s)",
        report.passed,
        n,
        secs,
        n as f64 / secs.max(1e-9),
    );
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_net_sweep(n: u64) -> ExitCode {
    println!(
        "sim net-sweep: {n} seeds, served-protocol oracles (transparency, replay, \
         kill at every protocol event, frame faults + mid-run kill)"
    );
    let start = Instant::now();
    let report = net_sweep(0..n);
    let secs = start.elapsed().as_secs_f64();
    for failure in &report.failures {
        println!("FAIL {failure}");
    }
    println!(
        "sim net-sweep: {}/{} seeds passed in {:.2}s ({:.1} seeds/s)",
        report.passed,
        n,
        secs,
        n as f64 / secs.max(1e-9),
    );
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_repro(seed: u64) -> ExitCode {
    println!("sim repro: seed {seed}");
    let outcome = simulate(seed, &SimOptions::default());
    println!(
        "  family {:?}: {} valid MSPs, {} questions, {} scheduling decisions ({} non-FIFO)",
        outcome.family,
        outcome.msps.len(),
        outcome.questions,
        outcome.decisions.len(),
        outcome.decisions.iter().filter(|&&d| d != 0).count(),
    );
    if let Some(e) = &outcome.error {
        println!("  run errored: {e}");
    }
    let tail: Vec<&str> = outcome.transcript.lines().rev().take(10).collect();
    println!("  transcript tail:");
    for line in tail.iter().rev() {
        println!("    {line}");
    }
    match check_seed(seed)
        .and_then(|()| check_service_seed(seed))
        .and_then(|()| check_durability_seed(seed))
        .and_then(|()| check_wave_seed(seed))
        .and_then(|()| check_net_seed(seed))
    {
        Ok(()) => {
            println!(
                "  all oracles passed (single-query, service, durability, waves \
                 and wire protocol)"
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            println!("FAIL {failure}");
            match shrink(seed, &SimOptions::default(), diverges_from_reference) {
                Some(shrunk) => {
                    println!(
                        "  shrunk to {} non-FIFO decisions; minimal script: {:?}",
                        shrunk.non_fifo, shrunk.script
                    );
                    println!("  minimal failing transcript:");
                    for line in shrunk.transcript.lines() {
                        println!("    {line}");
                    }
                }
                None => println!(
                    "  failure is not schedule-divergence (replay or oracle plumbing); \
                     see transcript above"
                ),
            }
            ExitCode::FAILURE
        }
    }
}

fn run_bench(n: u64) -> ExitCode {
    // Warm the per-engine-seed sequential references so the measurement is
    // pure harness throughput.
    for seed in 0..4 {
        let _ = check_seed(seed);
    }
    let start = Instant::now();
    let report = sweep(0..n);
    let secs = start.elapsed().as_secs_f64();
    let seeds_per_sec = n as f64 / secs.max(1e-9);
    println!(
        "sim bench: {n} seeds ({} passed) in {secs:.3}s = {seeds_per_sec:.1} seeds/s \
         (travel domain, 3 oracle runs per seed)",
        report.passed
    );
    let json = format!(
        "{{\n\"experiment\": \"simtest\",\n\"domain\": \"travel\",\n\"seeds\": {n},\n\
         \"passed\": {},\n\"secs\": {secs:.6},\n\"seeds_per_sec\": {seeds_per_sec:.3},\n\
         \"runs_per_seed\": 3\n}}\n",
        report.passed
    );
    match std::fs::write("BENCH_simtest.json", json) {
        Ok(()) => println!("wrote BENCH_simtest.json"),
        Err(e) => {
            eprintln!("could not write BENCH_simtest.json: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for failure in &report.failures {
            println!("FAIL {failure}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("sweep");
    let arg_u64 = |i: usize| args.get(i).and_then(|v| v.parse::<u64>().ok());
    match cmd {
        "sweep" => {
            let n = arg_u64(1).or_else(|| env_u64("OASSIS_SIM_SEEDS")).unwrap_or(256);
            run_sweep(n)
        }
        "service-sweep" => {
            let n = arg_u64(1)
                .or_else(|| env_u64("OASSIS_SIM_SEEDS"))
                .unwrap_or(64);
            run_service_sweep(n)
        }
        "durability-sweep" => {
            let n = arg_u64(1)
                .or_else(|| env_u64("OASSIS_SIM_SEEDS"))
                .unwrap_or(64);
            run_durability_sweep(n)
        }
        "wave-sweep" => {
            let n = arg_u64(1)
                .or_else(|| env_u64("OASSIS_SIM_SEEDS"))
                .unwrap_or(64);
            run_wave_sweep(n)
        }
        "net-sweep" => {
            let n = arg_u64(1)
                .or_else(|| env_u64("OASSIS_SIM_SEEDS"))
                .unwrap_or(64);
            run_net_sweep(n)
        }
        "repro" => match arg_u64(1).or_else(|| env_u64("OASSIS_SIM_SEED")) {
            Some(seed) => run_repro(seed),
            None => {
                eprintln!("repro needs a seed: `sim repro 42` or OASSIS_SIM_SEED=42");
                eprintln!("hint: a failing sweep prints e.g. `{}`", repro_command(42));
                ExitCode::FAILURE
            }
        },
        "bench" => {
            let n = arg_u64(1).unwrap_or(64);
            run_bench(n)
        }
        other => {
            eprintln!(
                "unknown command `{other}`; use: sweep [N] | service-sweep [N] | \
                 durability-sweep [N] | wave-sweep [N] | net-sweep [N] | \
                 repro [SEED] | bench [N]"
            );
            ExitCode::FAILURE
        }
    }
}
