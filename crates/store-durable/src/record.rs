//! The write-ahead-log record: one line per durable state change.
//!
//! Wire format (version 1): `seq|kind|fields...|checksum` where
//! `checksum` is the FNV-1a-64 hash (hex) of everything before the final
//! separator. Fields that may contain the separator (only the query
//! source) are percent-escaped. Fact-sets reuse the crowd-cache text
//! encoding (`s,r,o;s,r,o`, `-` for the empty set); member ids are the
//! raw vocabulary-interned integers, so a log is only meaningful against
//! the same ontology build — exactly the caveat `CrowdCache::export_text`
//! already carries.

use oassis_vocab::{ElementId, Fact, FactSet, RelationId};

use crate::DurableError;

/// The field separator within one record line.
const SEP: char = '|';

/// FNV-1a 64-bit: tiny, dependency-free, and plenty for torn-write and
/// bit-rot *detection* (this is not a cryptographic integrity claim).
/// Public so other line-framed formats (the `oassis-net` wire protocol)
/// can checksum exactly like the WAL.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Escape a free-text field so it cannot contain the separator or a
/// newline: `%` → `%25`, `|` → `%7C`, LF → `%0A`, CR → `%0D`. Shared with
/// the `oassis-net` frame codec, which uses the same line discipline.
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '|' => out.push_str("%7C"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape_field`]. Errors on an unknown escape sequence.
pub fn unescape_field(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        match hex.as_str() {
            "25" => out.push('%'),
            "7C" => out.push('|'),
            "0A" => out.push('\n'),
            "0D" => out.push('\r'),
            other => return Err(format!("bad escape %{other}")),
        }
    }
    Ok(out)
}

/// The engine-facing shape of a session admission: everything needed to
/// re-admit the session after a restart. Only the scalar subset of the
/// engine config is durable; runtime-only fields (sink, clock, curve
/// tracking) are re-supplied by the recovering caller.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmitSpec {
    /// OASSIS-QL source text.
    pub query: String,
    /// Support-threshold override (`None` = the query's own value).
    pub threshold: Option<f64>,
    /// Pool seat indices (`None` = the whole crowd).
    pub roster: Option<Vec<usize>>,
    /// Scheduling priority.
    pub priority: u8,
    /// Crowd-question budget at admission.
    pub budget: Option<u64>,
    /// Engine RNG seed.
    pub seed: u64,
    /// Aggregator sample size.
    pub aggregator_sample: usize,
    /// Specialization-question probability.
    pub specialization_ratio: f64,
    /// Pruning-interaction probability.
    pub pruning_ratio: f64,
    /// Safety cap on total questions.
    pub max_questions: usize,
    /// Early-exit after this many valid MSPs.
    pub top_k: Option<usize>,
    /// Whether the index-backed inference layer is on.
    pub use_indexes: bool,
    /// Client-chosen idempotency token (the `oassis-net` front-end dedupes
    /// retransmitted `Submit`s by it, across crashes). `None` for
    /// admissions made in-process.
    pub token: Option<u64>,
}

/// How a closed session ended (the durable mirror of the service's
/// `SessionStatus`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseStatus {
    /// Mined to completion.
    Completed,
    /// Cancelled with a partial result.
    Cancelled,
    /// Crowd-question budget ran out.
    BudgetExhausted,
}

impl CloseStatus {
    fn code(self) -> &'static str {
        match self {
            CloseStatus::Completed => "C",
            CloseStatus::Cancelled => "X",
            CloseStatus::BudgetExhausted => "B",
        }
    }

    fn from_code(code: &str) -> Result<Self, String> {
        match code {
            "C" => Ok(CloseStatus::Completed),
            "X" => Ok(CloseStatus::Cancelled),
            "B" => Ok(CloseStatus::BudgetExhausted),
            other => Err(format!("unknown close status {other:?}")),
        }
    }
}

/// One durable state change.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed concrete crowd answer: `(fact-set, member) → support`.
    /// `session` attributes the paying session when the answer came
    /// through a live dispatch (`None` for answers merged at session
    /// close or imported from elsewhere).
    Answer {
        /// Paying session id, if attributable.
        session: Option<u64>,
        /// Raw member id (`MemberId.0`).
        member: u32,
        /// The member's support value.
        support: f64,
        /// The fact-set asked about.
        factset: FactSet,
    },
    /// A session was admitted (or re-admitted after recovery, in which
    /// case `resumes` names the interrupted original it supersedes).
    Admit {
        /// Service-assigned session id.
        session: u64,
        /// The id of the interrupted session this admission resumes.
        resumes: Option<u64>,
        /// Everything needed to re-admit.
        spec: AdmitSpec,
    },
    /// Budget spend watermark: `spent` crowd questions dispatched so far
    /// by a budgeted session (recovery resumes with `budget - spent`).
    Budget {
        /// The spending session.
        session: u64,
        /// Dispatches so far, including any still in flight.
        spent: u64,
    },
    /// A session reached an end state; it no longer needs recovery.
    Close {
        /// The closed session.
        session: u64,
        /// How it ended.
        status: CloseStatus,
        /// Total crowd dispatches it paid for.
        crowd_questions: u64,
        /// The session's final rendered valid MSPs, so a client resuming a
        /// session that closed just before a crash can be answered from the
        /// log without re-mining.
        msps: Vec<String>,
    },
}

fn encode_factset(fs: &FactSet) -> String {
    if fs.is_empty() {
        return "-".to_owned();
    }
    fs.iter()
        .map(|f| format!("{},{},{}", f.subject.0, f.relation.0, f.object.0))
        .collect::<Vec<_>>()
        .join(";")
}

fn decode_factset(s: &str) -> Result<FactSet, String> {
    if s == "-" {
        return Ok(FactSet::new());
    }
    let mut facts = Vec::new();
    for triple in s.split(';') {
        let ids: Vec<&str> = triple.split(',').collect();
        let [s, r, o] = ids.as_slice() else {
            return Err(format!("bad fact {triple:?}"));
        };
        let parse = |x: &str| x.parse::<u32>().map_err(|e| e.to_string());
        facts.push(Fact::new(
            ElementId(parse(s)?),
            RelationId(parse(r)?),
            ElementId(parse(o)?),
        ));
    }
    Ok(FactSet::from_facts(facts))
}

fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "-".to_owned(),
    }
}

fn parse_opt<T: std::str::FromStr>(s: &str, what: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    if s == "-" {
        return Ok(None);
    }
    s.parse::<T>()
        .map(Some)
        .map_err(|e| format!("bad {what}: {e}"))
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse::<T>().map_err(|e| format!("bad {what}: {e}"))
}

/// Encode a list of free-text items into one field: each item is
/// [`escape_field`]-escaped (which removes every literal `%`), then `;`
/// — the item separator — is escaped as `%3B`. `-` encodes the empty
/// list, mirroring the other optional fields.
pub fn encode_list(items: &[String]) -> String {
    if items.is_empty() {
        return "-".to_owned();
    }
    items
        .iter()
        .map(|s| escape_field(s).replace(';', "%3B"))
        .collect::<Vec<_>>()
        .join(";")
}

/// Invert [`encode_list`].
pub fn decode_list(s: &str) -> Result<Vec<String>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(';')
        .map(|item| unescape_field(&item.replace("%3B", ";")))
        .collect()
}

fn encode_roster(roster: &Option<Vec<usize>>) -> String {
    match roster {
        None => "-".to_owned(),
        Some(seats) if seats.is_empty() => "e".to_owned(),
        Some(seats) => seats
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(","),
    }
}

fn decode_roster(s: &str) -> Result<Option<Vec<usize>>, String> {
    match s {
        "-" => Ok(None),
        "e" => Ok(Some(Vec::new())),
        list => list
            .split(',')
            .map(|x| x.parse::<usize>().map_err(|e| format!("bad roster: {e}")))
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
    }
}

/// Number of `|`-separated fields [`AdmitSpec::encode_fields`] emits.
pub const ADMIT_SPEC_FIELDS: usize = 13;

impl AdmitSpec {
    /// Encode as [`ADMIT_SPEC_FIELDS`] `|`-separated fields — the layout
    /// the `Admit` WAL record embeds, shared with the `oassis-net`
    /// `Submit` frame so the wire and the log agree on the spec codec.
    pub fn encode_fields(&self) -> String {
        format!(
            "{}{SEP}{}{SEP}{}{SEP}{}{SEP}{}{SEP}{}{SEP}{}{SEP}{}{SEP}{}{SEP}{}{SEP}{}{SEP}{}{SEP}{}",
            self.priority,
            opt(&self.budget),
            opt(&self.threshold),
            self.seed,
            self.aggregator_sample,
            self.specialization_ratio,
            self.pruning_ratio,
            self.max_questions,
            opt(&self.top_k),
            u8::from(self.use_indexes),
            opt(&self.token),
            encode_roster(&self.roster),
            escape_field(&self.query)
        )
    }

    /// Invert [`encode_fields`](Self::encode_fields); `fields` must hold
    /// exactly [`ADMIT_SPEC_FIELDS`] entries.
    pub fn decode_fields(fields: &[&str]) -> Result<AdmitSpec, String> {
        if fields.len() != ADMIT_SPEC_FIELDS {
            return Err(format!(
                "expected {ADMIT_SPEC_FIELDS} spec fields, got {}",
                fields.len()
            ));
        }
        Ok(AdmitSpec {
            priority: parse(fields[0], "priority")?,
            budget: parse_opt(fields[1], "budget")?,
            threshold: parse_opt(fields[2], "threshold")?,
            seed: parse(fields[3], "seed")?,
            aggregator_sample: parse(fields[4], "aggregator sample")?,
            specialization_ratio: parse(fields[5], "specialization ratio")?,
            pruning_ratio: parse(fields[6], "pruning ratio")?,
            max_questions: parse(fields[7], "max questions")?,
            top_k: parse_opt(fields[8], "top-k")?,
            use_indexes: parse::<u8>(fields[9], "use-indexes flag")? != 0,
            token: parse_opt(fields[10], "token")?,
            roster: decode_roster(fields[11])?,
            query: unescape_field(fields[12])?,
        })
    }
}

impl WalRecord {
    /// The record's kind tag — also the `wal.append` counter label.
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::Answer { .. } => "answer",
            WalRecord::Admit { .. } => "admit",
            WalRecord::Budget { .. } => "budget",
            WalRecord::Close { .. } => "close",
        }
    }

    /// Encode as one checksummed log line (no trailing newline).
    pub fn encode(&self, seq: u64) -> String {
        let body = match self {
            WalRecord::Answer {
                session,
                member,
                support,
                factset,
            } => format!(
                "a{SEP}{}{SEP}{member}{SEP}{support}{SEP}{}",
                opt(session),
                encode_factset(factset)
            ),
            WalRecord::Admit {
                session,
                resumes,
                spec,
            } => format!(
                "s{SEP}{session}{SEP}{}{SEP}{}",
                opt(resumes),
                spec.encode_fields()
            ),
            WalRecord::Budget { session, spent } => format!("b{SEP}{session}{SEP}{spent}"),
            WalRecord::Close {
                session,
                status,
                crowd_questions,
                msps,
            } => format!(
                "c{SEP}{session}{SEP}{}{SEP}{crowd_questions}{SEP}{}",
                status.code(),
                encode_list(msps)
            ),
        };
        let payload = format!("{seq}{SEP}{body}");
        format!("{payload}{SEP}{:016x}", fnv1a64(payload.as_bytes()))
    }

    /// Decode one log line, verifying its checksum. Returns the sequence
    /// number and the record; the error is a plain reason string (callers
    /// wrap it with file/line context).
    pub fn decode(line: &str) -> Result<(u64, WalRecord), String> {
        let (payload, checksum) = line
            .rsplit_once(SEP)
            .ok_or_else(|| "missing checksum".to_owned())?;
        let expected = u64::from_str_radix(checksum, 16).map_err(|e| format!("bad checksum: {e}"))?;
        let actual = fnv1a64(payload.as_bytes());
        if actual != expected {
            return Err(format!(
                "checksum mismatch (stored {expected:016x}, computed {actual:016x})"
            ));
        }
        let fields: Vec<&str> = payload.split(SEP).collect();
        let need = |n: usize| -> Result<(), String> {
            if fields.len() == n {
                Ok(())
            } else {
                Err(format!("expected {n} fields, got {}", fields.len()))
            }
        };
        let seq: u64 = parse(fields[0], "sequence number")?;
        let record = match fields.get(1).copied() {
            Some("a") => {
                need(6)?;
                WalRecord::Answer {
                    session: parse_opt(fields[2], "session id")?,
                    member: parse(fields[3], "member id")?,
                    support: parse(fields[4], "support")?,
                    factset: decode_factset(fields[5])?,
                }
            }
            Some("s") => {
                need(4 + ADMIT_SPEC_FIELDS)?;
                WalRecord::Admit {
                    session: parse(fields[2], "session id")?,
                    resumes: parse_opt(fields[3], "resumed id")?,
                    spec: AdmitSpec::decode_fields(&fields[4..])?,
                }
            }
            Some("b") => {
                need(4)?;
                WalRecord::Budget {
                    session: parse(fields[2], "session id")?,
                    spent: parse(fields[3], "spent")?,
                }
            }
            Some("c") => {
                need(6)?;
                WalRecord::Close {
                    session: parse(fields[2], "session id")?,
                    status: CloseStatus::from_code(fields[3])?,
                    crowd_questions: parse(fields[4], "crowd questions")?,
                    msps: decode_list(fields[5])?,
                }
            }
            other => return Err(format!("unknown record kind {other:?}")),
        };
        Ok((seq, record))
    }

    /// Decode with file context for error reporting.
    pub(crate) fn decode_in(
        line: &str,
        context: &str,
        line_no: usize,
    ) -> Result<(u64, WalRecord), DurableError> {
        WalRecord::decode(line).map_err(|reason| DurableError::Corrupt {
            context: context.to_owned(),
            line: line_no,
            reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(n: u32) -> FactSet {
        FactSet::from_facts([Fact::new(ElementId(n), RelationId(1), ElementId(n + 1))])
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Answer {
                session: Some(3),
                member: 7,
                support: 1.0 / 3.0,
                factset: fs(4),
            },
            WalRecord::Answer {
                session: None,
                member: 0,
                support: 0.5,
                factset: FactSet::new(),
            },
            WalRecord::Admit {
                session: 9,
                resumes: Some(2),
                spec: AdmitSpec {
                    query: "SELECT FACT-SETS WHERE $x | with a pipe\nand newline".into(),
                    threshold: Some(0.4),
                    roster: Some(vec![0, 2, 5]),
                    priority: 3,
                    budget: Some(12),
                    seed: 42,
                    aggregator_sample: 5,
                    specialization_ratio: 0.25,
                    pruning_ratio: 0.0,
                    max_questions: 1_000_000,
                    top_k: None,
                    use_indexes: true,
                    token: Some(0xFEED_F00D),
                },
            },
            WalRecord::Budget {
                session: 9,
                spent: 4,
            },
            WalRecord::Close {
                session: 9,
                status: CloseStatus::BudgetExhausted,
                crowd_questions: 12,
                msps: vec![
                    "{Biking doAt Central Park}".into(),
                    "odd; rendering | with %3B separators".into(),
                ],
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for (i, rec) in sample_records().into_iter().enumerate() {
            let line = rec.encode(i as u64 + 1);
            assert!(!line.contains('\n'), "one record = one line: {line:?}");
            let (seq, back) = WalRecord::decode(&line).expect("roundtrip");
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn roster_variants_roundtrip() {
        for roster in [None, Some(vec![]), Some(vec![1]), Some(vec![0, 1, 2])] {
            let rec = WalRecord::Admit {
                session: 0,
                resumes: None,
                spec: AdmitSpec {
                    query: "q".into(),
                    threshold: None,
                    roster: roster.clone(),
                    priority: 0,
                    budget: None,
                    seed: 0,
                    aggregator_sample: 5,
                    specialization_ratio: 0.0,
                    pruning_ratio: 0.0,
                    max_questions: 10,
                    top_k: Some(2),
                    use_indexes: false,
                    token: None,
                },
            };
            let (_, back) = WalRecord::decode(&rec.encode(1)).expect("roundtrip");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn support_values_roundtrip_exactly() {
        for support in [0.0, 1.0, 1.0 / 3.0, 2.0 / 7.0, 0.123_456_789_012_345_67] {
            let rec = WalRecord::Answer {
                session: None,
                member: 1,
                support,
                factset: fs(1),
            };
            let (_, back) = WalRecord::decode(&rec.encode(1)).expect("roundtrip");
            let WalRecord::Answer { support: s, .. } = back else {
                panic!("kind changed");
            };
            assert_eq!(s.to_bits(), support.to_bits(), "bit-exact float roundtrip");
        }
    }

    #[test]
    fn list_encoding_roundtrips() {
        for items in [
            vec![],
            vec!["plain".to_owned()],
            vec!["a;b".to_owned(), "c|d".to_owned(), "e%3Bf".to_owned()],
            vec!["line\nbreak".to_owned(), "%".to_owned()],
        ] {
            let encoded = encode_list(&items);
            assert!(!encoded.contains('|') && !encoded.contains('\n'), "{encoded:?}");
            assert_eq!(decode_list(&encoded).expect("roundtrip"), items);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let line = sample_records()[0].encode(1);
        // Flip one character of the body.
        let mut bytes = line.clone().into_bytes();
        bytes[2] = if bytes[2] == b'7' { b'8' } else { b'7' };
        let tampered = String::from_utf8(bytes).unwrap();
        assert!(WalRecord::decode(&tampered)
            .unwrap_err()
            .contains("checksum"));
        // Truncation (a torn write) is also caught.
        assert!(WalRecord::decode(&line[..line.len() - 3]).is_err());
        assert!(WalRecord::decode("").is_err());
    }
}
