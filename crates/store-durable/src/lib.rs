//! Durable state for the OASSIS service layer.
//!
//! Crowd answers are the expensive resource — every one is a human
//! interaction — so the service must not lose them on process exit. This
//! crate provides the persistence substrate:
//!
//! * [`WalRecord`] — one versioned, checksummed line per state change:
//!   a committed crowd answer, a session admission, a budget spend
//!   watermark, or a session close;
//! * [`Wal`] — the append-only log file itself: records are FNV-1a-64
//!   checksummed, appends are flushed, and a torn tail (a partial line
//!   from a crash mid-write) is detected and truncated on open;
//! * snapshots — a compacted record sequence that reproduces the full
//!   live state, written atomically (temp file + rename) so the log tail
//!   can be discarded; recovery loads the latest snapshot and replays
//!   only the tail;
//! * the [`Persistence`] trait with two implementations:
//!   [`InMemory`] (tests and deterministic crash simulation — it can
//!   reconstruct the exact durable state "as of record *k*") and
//!   [`FileBacked`] (a directory holding `wal.log` + `snapshot.oas`).
//!
//! The crate deliberately knows nothing about sessions or the mining
//! engine: records carry plain scalars (raw member ids, query source
//! text, config scalars) so `oassis-crowd` and `oassis-core` can layer
//! their own types on top without a dependency cycle.
//!
//! Appends, replays and snapshots are observable as `wal.append`,
//! `wal.replay` and `wal.snapshot` (see `docs/observability.md`).

mod file;
mod persist;
mod record;

pub use file::{FileBacked, Wal, SNAPSHOT_FILE, WAL_FILE};
pub use persist::{shared, InMemory, Persistence, SharedPersistence};
pub use record::{
    decode_list, encode_list, escape_field, fnv1a64, unescape_field, AdmitSpec, CloseStatus,
    WalRecord, ADMIT_SPEC_FIELDS,
};

/// Why a durability operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// The underlying filesystem operation failed.
    Io(String),
    /// A log or snapshot record failed validation (bad checksum, bad
    /// field) somewhere it cannot be shrugged off as a torn tail.
    Corrupt {
        /// What was being read (`wal`, `snapshot`, ...).
        context: String,
        /// 1-based line number within that file.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durability i/o error: {e}"),
            DurableError::Corrupt {
                context,
                line,
                reason,
            } => write!(f, "corrupt {context} record at line {line}: {reason}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e.to_string())
    }
}
