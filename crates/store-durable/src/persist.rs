//! The [`Persistence`] trait — what the service layer talks to — and the
//! [`InMemory`] implementation used by tests and the deterministic crash
//! simulation.

use std::sync::{Arc, Mutex};

use oassis_obs::{names, null_sink, EventSink, SinkExt};

use crate::{DurableError, WalRecord};

/// A durable record sink with replay-on-open semantics.
///
/// The contract mirrors a compacting write-ahead log:
///
/// * [`append`](Persistence::append) durably adds one record and returns
///   its monotonically increasing sequence number;
/// * [`replay`](Persistence::replay) returns every *live* record — the
///   latest snapshot's compacted sequence followed by the log tail — in
///   append order; replaying them into empty state reproduces the full
///   durable state;
/// * [`snapshot`](Persistence::snapshot) installs a compacted record
///   sequence (supplied by the owner, who knows the live state) and
///   discards the log tail it covers;
/// * [`wants_snapshot`](Persistence::wants_snapshot) tells the owner the
///   tail has grown past the configured compaction interval.
pub trait Persistence: Send {
    /// Durably append one record; returns its sequence number.
    fn append(&mut self, record: &WalRecord) -> Result<u64, DurableError>;

    /// Every live record (snapshot + tail) in append order.
    fn replay(&mut self) -> Result<Vec<WalRecord>, DurableError>;

    /// Records appended since the last snapshot (the tail length).
    fn log_len(&self) -> u64;

    /// Whether the tail has outgrown the compaction interval.
    fn wants_snapshot(&self) -> bool;

    /// Replace snapshot + tail with `compacted` (which must reproduce the
    /// owner's full live state when replayed).
    fn snapshot(&mut self, compacted: &[WalRecord]) -> Result<(), DurableError>;
}

/// The handle the service and answer store share.
pub type SharedPersistence = Arc<Mutex<dyn Persistence>>;

/// Wrap a concrete persistence in the [`SharedPersistence`] handle.
pub fn shared<P: Persistence + 'static>(p: P) -> SharedPersistence {
    Arc::new(Mutex::new(p))
}

/// In-memory persistence: the full WAL semantics (sequence numbers,
/// snapshot compaction, replay) without a filesystem.
///
/// Beyond serving tests, it keeps the complete append **history** and the
/// points at which snapshots were taken, so a simulated crash can
/// reconstruct the exact durable image "as of record *k*" — see
/// [`crashed_at`](InMemory::crashed_at). That is what the crash-restart
/// oracle in `oassis-simtest` sweeps over.
pub struct InMemory {
    /// Compacted records from the latest snapshot.
    base: Vec<WalRecord>,
    /// Records appended since the latest snapshot.
    tail: Vec<WalRecord>,
    /// Every record ever appended to this instance, in order.
    history: Vec<WalRecord>,
    /// `(history length when taken, compacted records)` per snapshot.
    snaps: Vec<(usize, Vec<WalRecord>)>,
    /// Compact once the tail reaches this many records (`None` = never).
    snapshot_every: Option<u64>,
    next_seq: u64,
    sink: Arc<dyn EventSink>,
}

impl Default for InMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemory {
    /// An empty log that never auto-requests compaction.
    pub fn new() -> Self {
        InMemory {
            base: Vec::new(),
            tail: Vec::new(),
            history: Vec::new(),
            snaps: Vec::new(),
            snapshot_every: None,
            next_seq: 1,
            sink: null_sink(),
        }
    }

    /// Request a snapshot every `every` appended records.
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = Some(every.max(1));
        self
    }

    /// Report `wal.*` counters to `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Every record ever appended to this instance, in append order.
    pub fn history(&self) -> &[WalRecord] {
        &self.history
    }

    /// Number of records ever appended.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Number of snapshots taken.
    pub fn snapshot_count(&self) -> usize {
        self.snaps.len()
    }

    /// The durable image as it stood after exactly `k` appends: the
    /// latest snapshot taken at or before that point, plus the log tail
    /// up to record `k`. This is what a process crash after the `k`-th
    /// append (and any snapshot compactions up to it) would leave on
    /// disk for recovery to find.
    ///
    /// # Panics
    /// If `k` exceeds the number of appended records.
    pub fn crashed_at(&self, k: usize) -> InMemory {
        assert!(
            k <= self.history.len(),
            "crash point {k} beyond history ({} records)",
            self.history.len()
        );
        let (covered, base) = self
            .snaps
            .iter()
            .rev()
            .find(|(point, _)| *point <= k)
            .map(|(point, compacted)| (*point, compacted.clone()))
            .unwrap_or((0, Vec::new()));
        let tail: Vec<WalRecord> = self.history[covered..k].to_vec();
        InMemory {
            base,
            history: tail.clone(),
            tail,
            snaps: Vec::new(),
            snapshot_every: self.snapshot_every,
            next_seq: k as u64 + 1,
            sink: null_sink(),
        }
    }
}

impl Persistence for InMemory {
    fn append(&mut self, record: &WalRecord) -> Result<u64, DurableError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tail.push(record.clone());
        self.history.push(record.clone());
        self.sink.count_labeled(names::WAL_APPEND, record.kind(), 1);
        Ok(seq)
    }

    fn replay(&mut self) -> Result<Vec<WalRecord>, DurableError> {
        let mut out = self.base.clone();
        out.extend(self.tail.iter().cloned());
        self.sink.count(names::WAL_REPLAY, out.len() as u64);
        Ok(out)
    }

    fn log_len(&self) -> u64 {
        self.tail.len() as u64
    }

    fn wants_snapshot(&self) -> bool {
        self.snapshot_every
            .is_some_and(|every| self.tail.len() as u64 >= every)
    }

    fn snapshot(&mut self, compacted: &[WalRecord]) -> Result<(), DurableError> {
        self.base = compacted.to_vec();
        self.tail.clear();
        self.snaps.push((self.history.len(), compacted.to_vec()));
        self.sink.count(names::WAL_SNAPSHOT, 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_vocab::{ElementId, Fact, FactSet, RelationId};

    fn ans(n: u32) -> WalRecord {
        WalRecord::Answer {
            session: None,
            member: n,
            support: 0.5,
            factset: FactSet::from_facts([Fact::new(
                ElementId(n),
                RelationId(0),
                ElementId(0),
            )]),
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let mut p = InMemory::new();
        assert_eq!(p.append(&ans(1)).unwrap(), 1);
        assert_eq!(p.append(&ans(2)).unwrap(), 2);
        assert_eq!(p.replay().unwrap(), vec![ans(1), ans(2)]);
        assert_eq!(p.log_len(), 2);
        assert!(!p.wants_snapshot());
    }

    #[test]
    fn snapshot_compacts_tail() {
        let mut p = InMemory::new().with_snapshot_every(2);
        p.append(&ans(1)).unwrap();
        assert!(!p.wants_snapshot());
        p.append(&ans(2)).unwrap();
        assert!(p.wants_snapshot());
        p.snapshot(&[ans(9)]).unwrap();
        assert_eq!(p.log_len(), 0);
        p.append(&ans(3)).unwrap();
        assert_eq!(p.replay().unwrap(), vec![ans(9), ans(3)]);
    }

    #[test]
    fn crashed_at_reconstructs_every_prefix() {
        let mut p = InMemory::new();
        for n in 1..=5 {
            p.append(&ans(n)).unwrap();
            if n == 3 {
                // The owner compacts records 1–3 into one.
                p.snapshot(&[ans(30)]).unwrap();
            }
        }
        // Before the snapshot point: raw history prefix.
        assert_eq!(p.crashed_at(0).replay().unwrap(), vec![]);
        assert_eq!(p.crashed_at(2).replay().unwrap(), vec![ans(1), ans(2)]);
        // At and after the snapshot point: compacted base + tail.
        assert_eq!(p.crashed_at(3).replay().unwrap(), vec![ans(30)]);
        assert_eq!(
            p.crashed_at(5).replay().unwrap(),
            vec![ans(30), ans(4), ans(5)]
        );
    }

    #[test]
    #[should_panic(expected = "beyond history")]
    fn crashed_at_rejects_future_points() {
        InMemory::new().crashed_at(1);
    }
}
