//! File-backed persistence: a directory holding the append-only
//! [`Wal`] (`wal.log`) plus the latest snapshot (`snapshot.oas`).
//!
//! Crash-safety model:
//!
//! * every WAL append is one checksummed line followed by a flush; a
//!   crash mid-write leaves a *torn tail* — a final line that fails to
//!   parse or checksum — which [`Wal::open`] detects, truncates, and
//!   reports, keeping every record before it;
//! * snapshots are written to a temp file and atomically renamed over
//!   `snapshot.oas`, then the WAL is truncated; a crash between the
//!   rename and the truncate leaves stale WAL records whose sequence
//!   numbers the snapshot already covers — replay skips them.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use oassis_obs::{names, null_sink, EventSink, SinkExt};

use crate::{DurableError, Persistence, WalRecord};

/// The append-only log file inside a [`FileBacked`] directory.
pub const WAL_FILE: &str = "wal.log";
/// The latest-snapshot file inside a [`FileBacked`] directory.
pub const SNAPSHOT_FILE: &str = "snapshot.oas";

const WAL_HEADER: &str = "# oassis wal v1";
const SNAPSHOT_HEADER: &str = "# oassis snapshot v1 covering ";

/// The raw append-only log file: open-with-scan (torn tail truncated),
/// checksummed appends, explicit truncation after compaction.
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Records found by the opening scan, with their sequence numbers.
    records: Vec<(u64, WalRecord)>,
    /// Whether the opening scan truncated a torn tail.
    truncated_torn_tail: bool,
}

impl Wal {
    /// Open (or create) the log at `path`, scanning existing records and
    /// truncating a torn tail if the last line fails to parse.
    ///
    /// Corruption anywhere *before* the final record is not a torn write
    /// and is reported as [`DurableError::Corrupt`] instead of being
    /// silently dropped.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, DurableError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut contents = String::new();
        file.read_to_string(&mut contents)?;
        if contents.is_empty() {
            writeln!(file, "{WAL_HEADER}")?;
            file.flush()?;
        }
        let mut records = Vec::new();
        let mut good_len = 0usize;
        let mut bad: Option<(usize, String)> = None;
        let mut offset = 0usize;
        for (no, line) in contents.split_inclusive('\n').enumerate() {
            let end = offset + line.len();
            let text = line.trim_end_matches(['\n', '\r']);
            if text.is_empty() || text.starts_with('#') {
                if line.ends_with('\n') {
                    good_len = end;
                }
                offset = end;
                continue;
            }
            match WalRecord::decode(text) {
                // A record only counts once its newline made it to disk;
                // a complete-looking line without one is still a torn
                // write in progress.
                Ok((seq, rec)) if line.ends_with('\n') => {
                    records.push((seq, rec));
                    good_len = end;
                }
                Ok(_) => {
                    bad = Some((no + 1, "record missing trailing newline".to_owned()));
                    break;
                }
                Err(reason) => {
                    bad = Some((no + 1, reason));
                    break;
                }
            }
            offset = end;
        }
        let mut truncated = false;
        if let Some((line_no, reason)) = bad {
            let tail_lines = contents[good_len..]
                .lines()
                .filter(|l| !l.trim().is_empty())
                .count();
            if tail_lines > 1 {
                // Damage before the end of the log: not a torn write.
                return Err(DurableError::Corrupt {
                    context: format!("wal ({})", path.display()),
                    line: line_no,
                    reason,
                });
            }
            file.set_len(good_len as u64)?;
            file.seek(std::io::SeekFrom::End(0))?;
            truncated = true;
        }
        Ok(Wal {
            path,
            file,
            records,
            truncated_torn_tail: truncated,
        })
    }

    /// Records found when the log was opened.
    pub fn records(&self) -> &[(u64, WalRecord)] {
        &self.records
    }

    /// Whether opening truncated a torn final record.
    pub fn truncated_torn_tail(&self) -> bool {
        self.truncated_torn_tail
    }

    /// Append one record with sequence number `seq` and flush.
    pub fn append(&mut self, seq: u64, record: &WalRecord) -> Result<(), DurableError> {
        writeln!(self.file, "{}", record.encode(seq))?;
        self.file.flush()?;
        Ok(())
    }

    /// Discard every record (after a snapshot made them redundant).
    pub fn truncate(&mut self) -> Result<(), DurableError> {
        self.file.set_len(0)?;
        self.file.seek(std::io::SeekFrom::Start(0))?;
        writeln!(self.file, "{WAL_HEADER}")?;
        self.file.flush()?;
        self.records.clear();
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read the snapshot file: `(covered sequence number, compacted records)`.
fn read_snapshot(path: &Path) -> Result<(u64, Vec<WalRecord>), DurableError> {
    let context = format!("snapshot ({})", path.display());
    let contents = fs::read_to_string(path)?;
    let mut lines = contents.lines().enumerate();
    let covered = match lines.next() {
        Some((_, header)) if header.starts_with(SNAPSHOT_HEADER) => header
            [SNAPSHOT_HEADER.len()..]
            .trim()
            .parse::<u64>()
            .map_err(|e| DurableError::Corrupt {
                context: context.clone(),
                line: 1,
                reason: format!("bad covered sequence: {e}"),
            })?,
        other => {
            return Err(DurableError::Corrupt {
                context,
                line: 1,
                reason: format!("bad snapshot header {:?}", other.map(|(_, l)| l)),
            })
        }
    };
    let mut records = Vec::new();
    for (no, line) in lines {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let (_, rec) = WalRecord::decode_in(line, &context, no + 1)?;
        records.push(rec);
    }
    Ok((covered, records))
}

/// Durable persistence over a directory: `wal.log` + `snapshot.oas`.
///
/// [`open`](FileBacked::open) is the recovery entry point: it loads the
/// latest snapshot (if any), replays the WAL tail past it, truncates a
/// torn final record, and leaves the instance ready to append.
pub struct FileBacked {
    dir: PathBuf,
    wal: Wal,
    /// Live records: snapshot base + WAL tail, in append order.
    loaded: Vec<WalRecord>,
    /// Sequence number covered by the loaded snapshot (0 = none).
    covered: u64,
    /// Records currently in the WAL tail.
    tail_len: u64,
    next_seq: u64,
    snapshot_every: Option<u64>,
    sink: Arc<dyn EventSink>,
}

impl FileBacked {
    /// Open (creating if needed) the durable state under `dir` and replay
    /// it: snapshot first, then the WAL tail.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, DurableError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let (covered, mut loaded) = if snap_path.exists() {
            read_snapshot(&snap_path)?
        } else {
            (0, Vec::new())
        };
        let wal = Wal::open(dir.join(WAL_FILE))?;
        let mut tail_len = 0u64;
        let mut last_seq = covered;
        for (seq, rec) in wal.records() {
            // Stale records a snapshot already covers (crash between the
            // snapshot rename and the WAL truncate) are skipped.
            if *seq <= covered {
                continue;
            }
            loaded.push(rec.clone());
            tail_len += 1;
            last_seq = last_seq.max(*seq);
        }
        Ok(FileBacked {
            dir,
            wal,
            loaded,
            covered,
            tail_len,
            next_seq: last_seq + 1,
            snapshot_every: None,
            sink: null_sink(),
        })
    }

    /// Request a snapshot every `every` appended records.
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = Some(every.max(1));
        self
    }

    /// Report `wal.*` counters to `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// The directory this instance persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether opening truncated a torn WAL tail.
    pub fn truncated_torn_tail(&self) -> bool {
        self.wal.truncated_torn_tail()
    }
}

impl Persistence for FileBacked {
    fn append(&mut self, record: &WalRecord) -> Result<u64, DurableError> {
        let seq = self.next_seq;
        self.wal.append(seq, record)?;
        self.next_seq += 1;
        self.tail_len += 1;
        self.loaded.push(record.clone());
        self.sink.count_labeled(names::WAL_APPEND, record.kind(), 1);
        Ok(seq)
    }

    fn replay(&mut self) -> Result<Vec<WalRecord>, DurableError> {
        self.sink.count(names::WAL_REPLAY, self.loaded.len() as u64);
        Ok(self.loaded.clone())
    }

    fn log_len(&self) -> u64 {
        self.tail_len
    }

    fn wants_snapshot(&self) -> bool {
        self.snapshot_every
            .is_some_and(|every| self.tail_len >= every)
    }

    fn snapshot(&mut self, compacted: &[WalRecord]) -> Result<(), DurableError> {
        let covered = self.next_seq - 1;
        let tmp = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            writeln!(f, "{SNAPSHOT_HEADER}{covered}")?;
            for rec in compacted {
                writeln!(f, "{}", rec.encode(0))?;
            }
            f.flush()?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        self.wal.truncate()?;
        self.covered = covered;
        self.tail_len = 0;
        self.loaded = compacted.to_vec();
        self.sink.count(names::WAL_SNAPSHOT, 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_vocab::{ElementId, Fact, FactSet, RelationId};

    fn ans(n: u32) -> WalRecord {
        WalRecord::Answer {
            session: Some(1),
            member: n,
            support: 1.0 / 3.0,
            factset: FactSet::from_facts([Fact::new(
                ElementId(n),
                RelationId(0),
                ElementId(0),
            )]),
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oassis-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn file_backed_roundtrip_across_reopen() {
        let dir = tempdir("roundtrip");
        {
            let mut p = FileBacked::open(&dir).unwrap();
            p.append(&ans(1)).unwrap();
            p.append(&ans(2)).unwrap();
        }
        let mut p = FileBacked::open(&dir).unwrap();
        assert_eq!(p.replay().unwrap(), vec![ans(1), ans(2)]);
        p.append(&ans(3)).unwrap();
        let mut p = FileBacked::open(&dir).unwrap();
        assert_eq!(p.replay().unwrap(), vec![ans(1), ans(2), ans(3)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_and_recovers() {
        let dir = tempdir("snapshot");
        {
            let mut p = FileBacked::open(&dir).unwrap().with_snapshot_every(2);
            p.append(&ans(1)).unwrap();
            p.append(&ans(2)).unwrap();
            assert!(p.wants_snapshot());
            p.snapshot(&[ans(20)]).unwrap();
            assert_eq!(p.log_len(), 0);
            p.append(&ans(3)).unwrap();
        }
        let mut p = FileBacked::open(&dir).unwrap();
        assert_eq!(p.replay().unwrap(), vec![ans(20), ans(3)]);
        // The WAL itself only holds the tail.
        assert_eq!(Wal::open(dir.join(WAL_FILE)).unwrap().records().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tempdir("torn");
        {
            let mut p = FileBacked::open(&dir).unwrap();
            p.append(&ans(1)).unwrap();
            p.append(&ans(2)).unwrap();
        }
        // Simulate a crash mid-append: chop the last line in half.
        let wal_path = dir.join(WAL_FILE);
        let contents = fs::read_to_string(&wal_path).unwrap();
        fs::write(&wal_path, &contents[..contents.len() - 7]).unwrap();
        let mut p = FileBacked::open(&dir).unwrap();
        assert!(p.truncated_torn_tail());
        assert_eq!(p.replay().unwrap(), vec![ans(1)], "good prefix survives");
        // The truncated log appends cleanly again.
        p.append(&ans(3)).unwrap();
        let mut p = FileBacked::open(&dir).unwrap();
        assert_eq!(p.replay().unwrap(), vec![ans(1), ans(3)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_corruption_is_fatal() {
        let dir = tempdir("interior");
        {
            let mut p = FileBacked::open(&dir).unwrap();
            for n in 1..=3 {
                p.append(&ans(n)).unwrap();
            }
        }
        let wal_path = dir.join(WAL_FILE);
        let contents = fs::read_to_string(&wal_path).unwrap();
        // Tamper with the *second* record (not the tail).
        let lines: Vec<&str> = contents.lines().collect();
        let mut tampered: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        tampered[2] = tampered[2].replace('1', "2");
        fs::write(&wal_path, tampered.join("\n") + "\n").unwrap();
        assert!(matches!(
            FileBacked::open(&dir),
            Err(DurableError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_records_after_snapshot_rename_are_skipped() {
        let dir = tempdir("stale");
        let mut p = FileBacked::open(&dir).unwrap();
        p.append(&ans(1)).unwrap();
        p.append(&ans(2)).unwrap();
        p.snapshot(&[ans(20)]).unwrap();
        // Simulate "crash between rename and truncate": rewrite the WAL
        // with the pre-snapshot records (seq 1 and 2, now covered).
        let mut wal = Wal::open(dir.join(WAL_FILE)).unwrap();
        wal.append(1, &ans(1)).unwrap();
        wal.append(2, &ans(2)).unwrap();
        drop(wal);
        drop(p);
        let mut p = FileBacked::open(&dir).unwrap();
        assert_eq!(
            p.replay().unwrap(),
            vec![ans(20)],
            "covered sequence numbers are not replayed twice"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
