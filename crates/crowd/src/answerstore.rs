//! The cross-query answer store (the service-layer extension of §6 of the
//! paper's answer-reuse methodology).
//!
//! A [`CrowdCache`](crate::CrowdCache) lives for one query execution; the
//! [`AnswerStore`] outlives queries. Every committed concrete answer a
//! member gives through the service is logged here as a `(fact-set, member)
//! → support` record, and two reuse paths read it back:
//!
//! * **serve** — when a session is about to dispatch a concrete question
//!   the service first consults the store ([`lookup`](AnswerStore::lookup))
//!   and, on a hit, feeds the stored answer straight back without touching
//!   the crowd;
//! * **seed** — a newly admitted session receives a roster-filtered
//!   snapshot ([`seed_for`](AnswerStore::seed_for)) replayed into its
//!   `CrowdCache`, so questions the crowd already answered in earlier
//!   queries are never staged at all.
//!
//! Answers are threshold-independent (the same property that powers the
//! §6.3 replay methodology), so reuse across queries with different
//! `WITH SUPPORT` clauses is sound. Per-fact-set answer order is preserved
//! verbatim — re-running a fixed-sample aggregator over a seeded prefix
//! reproduces the original run's decisions deterministically.
//!
//! When a [`SharedPersistence`] is attached
//! ([`with_persistence`](AnswerStore::with_persistence)), every *new or
//! changed* `(fact-set, member)` answer is appended to the durable log as a
//! `WalRecord::Answer` — unchanged re-records (e.g. a finished session's
//! cache being absorbed after its answers were already logged at dispatch
//! time) append nothing, so the log stays proportional to real crowd work.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use oassis_obs::{names, null_sink, EventSink, SinkExt};
use oassis_store_durable::{SharedPersistence, WalRecord};
use oassis_vocab::FactSet;

use crate::cache::CrowdCache;
use crate::member::MemberId;
use crate::placement;
use crate::shared::DEFAULT_STRIPES;

type Stripe = Mutex<HashMap<FactSet, Vec<(MemberId, f64)>>>;

/// A persistent member×question answer log shared across query sessions.
///
/// Interior-mutable and lock-striped by fact-set hash (the same
/// [`placement`] scheme as [`SharedCrowdCache`](crate::SharedCrowdCache)),
/// so one store can be read and written by many concurrent sessions through
/// a shared reference without serializing on a single mutex. A fact-set
/// lives wholly in one stripe, which preserves per-fact-set insertion
/// order — the property the seeded-aggregator determinism depends on.
pub struct AnswerStore {
    /// Per stripe, per fact-set, the answers in insertion order (first
    /// answer first); a member re-answering overwrites in place.
    stripes: Box<[Stripe]>,
    sink: Arc<dyn EventSink>,
    /// Durable log receiving one `Answer` record per new/changed answer.
    persistence: Option<SharedPersistence>,
}

impl std::fmt::Debug for AnswerStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnswerStore")
            .field("fact_sets", &self.len())
            .field("stripes", &self.stripes.len())
            .field("durable", &self.persistence.is_some())
            .finish()
    }
}

impl Default for AnswerStore {
    fn default() -> Self {
        Self::with_stripes(DEFAULT_STRIPES)
    }
}

impl AnswerStore {
    /// An empty store with the default stripe count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with `stripes` independently locked stripes
    /// (clamped to ≥ 1). Size this like the shared cache: enough stripes
    /// that concurrent sessions rarely collide on one lock.
    pub fn with_stripes(stripes: usize) -> Self {
        AnswerStore {
            stripes: (0..stripes.max(1)).map(|_| Stripe::default()).collect(),
            sink: null_sink(),
            persistence: None,
        }
    }

    /// How many stripes this store was built with.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    fn stripe(&self, fs: &FactSet) -> &Stripe {
        &self.stripes[placement::factset_stripe(fs, self.stripes.len())]
    }

    /// Report `answerstore.hit` / `answerstore.miss` lookups to `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Append every future new/changed answer to `persistence`. Answers
    /// already in the store are *not* retro-logged — attach before
    /// recording, or rebuild via [`replay_records`](Self::replay_records)
    /// first and attach afterwards.
    pub fn with_persistence(mut self, persistence: SharedPersistence) -> Self {
        self.persistence = Some(persistence);
        self
    }

    /// Log `member`'s answer for `fs` (a repeat answer by the same member
    /// overwrites; members are assumed self-consistent).
    pub fn record(&self, fs: &FactSet, member: MemberId, support: f64) {
        self.record_tagged(fs, member, support, None);
    }

    /// [`record`](Self::record), durably attributed to the service session
    /// that paid for the answer (`None` = unattributed). Only a *new or
    /// changed* answer reaches the log.
    pub fn record_tagged(
        &self,
        fs: &FactSet,
        member: MemberId,
        support: f64,
        session: Option<u64>,
    ) {
        let changed = {
            let mut answers = self.stripe(fs).lock().expect("answer store poisoned");
            let entry = answers.entry(fs.clone()).or_default();
            match entry.iter_mut().find(|(m, _)| *m == member) {
                Some(slot) => {
                    let changed = slot.1.to_bits() != support.to_bits();
                    slot.1 = support;
                    changed
                }
                None => {
                    entry.push((member, support));
                    true
                }
            }
        };
        if changed {
            if let Some(p) = &self.persistence {
                p.lock()
                    .expect("persistence poisoned")
                    .append(&WalRecord::Answer {
                        session,
                        member: member.0,
                        support,
                        factset: fs.clone(),
                    })
                    .expect("wal append failed");
            }
        }
    }

    /// Serialize the full store as `WalRecord::Answer`s in canonical
    /// order: fact-sets sorted by their text encoding, answers within a
    /// fact-set in insertion order. Replaying them into an empty store
    /// ([`replay_records`](Self::replay_records)) reproduces the exact
    /// state — including the per-fact-set order the seeded-aggregator
    /// determinism depends on — so this is what service snapshots embed.
    pub fn to_records(&self) -> Vec<WalRecord> {
        type Keyed = (String, FactSet, Vec<(MemberId, f64)>);
        let mut keyed: Vec<Keyed> = Vec::new();
        for stripe in self.stripes.iter() {
            let answers = stripe.lock().expect("answer store poisoned");
            for (fs, entries) in answers.iter() {
                let key = fs
                    .iter()
                    .map(|f| format!("{},{},{}", f.subject.0, f.relation.0, f.object.0))
                    .collect::<Vec<_>>()
                    .join(";");
                keyed.push((key, fs.clone(), entries.clone()));
            }
        }
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::new();
        for (_, fs, entries) in keyed {
            for (m, s) in entries {
                out.push(WalRecord::Answer {
                    session: None,
                    member: m.0,
                    support: s,
                    factset: fs.clone(),
                });
            }
        }
        out
    }

    /// Replay `Answer` records (from a log or snapshot) into this store
    /// in order, without re-appending them to any attached persistence.
    /// Non-`Answer` records are ignored (the service replays those).
    pub fn replay_records<'a>(&self, records: impl IntoIterator<Item = &'a WalRecord>) {
        for rec in records {
            let WalRecord::Answer {
                member,
                support,
                factset,
                ..
            } = rec
            else {
                continue;
            };
            let mut answers = self.stripe(factset).lock().expect("answer store poisoned");
            let entry = answers.entry(factset.clone()).or_default();
            let member = MemberId(*member);
            match entry.iter_mut().find(|(m, _)| *m == member) {
                Some(slot) => slot.1 = *support,
                None => entry.push((member, *support)),
            }
        }
    }

    /// `member`'s stored answer for `fs`, if any. This is the dispatch-time
    /// reuse probe: a hit spares one crowd question (counted as
    /// `answerstore.hit[serve]`), a miss means the crowd must be asked.
    pub fn lookup(&self, fs: &FactSet, member: MemberId) -> Option<f64> {
        let answers = self.stripe(fs).lock().expect("answer store poisoned");
        let found = answers
            .get(fs)
            .and_then(|v| v.iter().find(|(m, _)| *m == member))
            .map(|&(_, s)| s);
        match found {
            Some(_) => self.sink.count_labeled(names::ANSWERSTORE_HIT, "serve", 1),
            None => self.sink.count(names::ANSWERSTORE_MISS, 1),
        }
        found
    }

    /// Snapshot every stored answer given by one of `members`, preserving
    /// per-fact-set insertion order. The triples are replayed into a new
    /// session's `CrowdCache` at admission (see `CrowdCache::seed`).
    pub fn seed_for(&self, members: &[MemberId]) -> Vec<(FactSet, MemberId, f64)> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            let answers = stripe.lock().expect("answer store poisoned");
            for (fs, entries) in answers.iter() {
                for &(m, s) in entries {
                    if members.contains(&m) {
                        out.push((fs.clone(), m, s));
                    }
                }
            }
        }
        out
    }

    /// Merge every answer of a finished session's `cache` into the store.
    pub fn absorb_cache(&self, cache: &CrowdCache) {
        for (fs, entries) in cache.iter() {
            for &(m, s) in entries {
                self.record(fs, m, s);
            }
        }
    }

    /// Number of distinct fact-sets with at least one stored answer.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("answer store poisoned").len())
            .sum()
    }

    /// Whether the store holds no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total `(fact-set, member)` answers stored.
    pub fn answer_count(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                s.lock()
                    .expect("answer store poisoned")
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Serialize to the same line-oriented text format as
    /// [`CrowdCache::export_text`] (ids are vocabulary-interned integers,
    /// meaningful only against the same ontology build).
    pub fn export_text(&self) -> String {
        let mut cache = CrowdCache::new();
        for stripe in self.stripes.iter() {
            let answers = stripe.lock().expect("answer store poisoned");
            for (fs, entries) in answers.iter() {
                for &(m, s) in entries {
                    cache.seed(fs, m, s);
                }
            }
        }
        cache.export_text()
    }

    /// Parse a dump produced by [`export_text`](Self::export_text) (or by
    /// [`CrowdCache::export_text`] — the formats are identical).
    pub fn import_text(input: &str) -> Result<AnswerStore, String> {
        let cache = CrowdCache::import_text(input)?;
        let store = AnswerStore::new();
        store.absorb_cache(&cache);
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_vocab::{ElementId, Fact, RelationId};

    fn fs(n: u32) -> FactSet {
        FactSet::from_facts([Fact::new(ElementId(n), RelationId(0), ElementId(0))])
    }

    #[test]
    fn record_lookup_roundtrip() {
        let store = AnswerStore::new();
        assert!(store.is_empty());
        store.record(&fs(1), MemberId(1), 0.5);
        store.record(&fs(1), MemberId(2), 0.25);
        assert_eq!(store.lookup(&fs(1), MemberId(1)), Some(0.5));
        assert_eq!(store.lookup(&fs(1), MemberId(3)), None);
        assert_eq!(store.lookup(&fs(2), MemberId(1)), None);
        assert_eq!(store.len(), 1);
        assert_eq!(store.answer_count(), 2);
    }

    #[test]
    fn same_member_overwrites() {
        let store = AnswerStore::new();
        store.record(&fs(1), MemberId(1), 0.5);
        store.record(&fs(1), MemberId(1), 0.75);
        assert_eq!(store.lookup(&fs(1), MemberId(1)), Some(0.75));
        assert_eq!(store.answer_count(), 1);
    }

    #[test]
    fn seed_for_filters_by_roster_and_keeps_order() {
        let store = AnswerStore::new();
        store.record(&fs(1), MemberId(1), 0.1);
        store.record(&fs(1), MemberId(2), 0.2);
        store.record(&fs(1), MemberId(3), 0.3);
        let seeded = store.seed_for(&[MemberId(1), MemberId(3)]);
        let for_fs1: Vec<_> = seeded.iter().map(|(_, m, s)| (*m, *s)).collect();
        assert_eq!(
            for_fs1,
            vec![(MemberId(1), 0.1), (MemberId(3), 0.3)],
            "roster-filtered, insertion order preserved"
        );
    }

    #[test]
    fn export_import_roundtrip() {
        let store = AnswerStore::new();
        store.record(&fs(1), MemberId(1), 0.5);
        store.record(&fs(2), MemberId(2), 1.0 / 3.0);
        let text = store.export_text();
        let back = AnswerStore::import_text(&text).unwrap();
        assert_eq!(back.lookup(&fs(1), MemberId(1)), Some(0.5));
        assert_eq!(back.lookup(&fs(2), MemberId(2)), Some(1.0 / 3.0));
        assert_eq!(back.answer_count(), store.answer_count());
    }

    #[test]
    fn absorb_cache_merges_answers() {
        let mut cache = CrowdCache::new();
        cache.record(&fs(1), MemberId(1), 0.4);
        let store = AnswerStore::new();
        store.absorb_cache(&cache);
        assert_eq!(store.lookup(&fs(1), MemberId(1)), Some(0.4));
    }

    #[test]
    fn empty_store_roundtrips_through_text() {
        let store = AnswerStore::new();
        let text = store.export_text();
        let back = AnswerStore::import_text(&text).expect("empty dump parses");
        assert!(back.is_empty());
        assert_eq!(back.answer_count(), 0);
        assert_eq!(back.export_text(), text, "stable on re-export");
    }

    #[test]
    fn duplicate_pair_roundtrips_as_one_answer() {
        let store = AnswerStore::new();
        store.record(&fs(1), MemberId(1), 0.5);
        store.record(&fs(1), MemberId(1), 0.75); // same (fact-set, member)
        let back = AnswerStore::import_text(&store.export_text()).unwrap();
        assert_eq!(back.answer_count(), 1, "overwrite survives the roundtrip");
        assert_eq!(back.lookup(&fs(1), MemberId(1)), Some(0.75));
    }

    #[test]
    fn log_replay_roundtrip_is_stable() {
        let store = AnswerStore::new();
        // Insertion order deliberately differs from member-id order so the
        // roundtrip must preserve *order*, not just content.
        store.record(&fs(2), MemberId(3), 0.3);
        store.record(&fs(2), MemberId(1), 0.1);
        store.record(&fs(1), MemberId(2), 1.0 / 3.0);
        store.record(&fs(2), MemberId(3), 0.9); // duplicate pair, overwrites
        let records = store.to_records();
        assert_eq!(records.len(), store.answer_count());

        let replayed = AnswerStore::new();
        replayed.replay_records(&records);
        assert_eq!(
            replayed.to_records(),
            records,
            "records are a fixed point of replay"
        );
        let members = [MemberId(1), MemberId(2), MemberId(3)];
        assert_eq!(
            replayed.seed_for(&members),
            store.seed_for(&members),
            "per-fact-set insertion order survives the log roundtrip"
        );
        assert_eq!(replayed.lookup(&fs(2), MemberId(3)), Some(0.9));
    }

    #[test]
    fn stripe_count_is_configurable_and_invisible() {
        for stripes in [1, 3, 64] {
            let store = AnswerStore::with_stripes(stripes);
            assert_eq!(store.stripes(), stripes);
            for n in 0..32 {
                store.record(&fs(n), MemberId(n % 4), f64::from(n) / 32.0);
            }
            assert_eq!(store.len(), 32);
            assert_eq!(store.answer_count(), 32);
            assert_eq!(store.lookup(&fs(7), MemberId(3)), Some(7.0 / 32.0));
        }
        assert_eq!(AnswerStore::with_stripes(0).stripes(), 1, "clamped");
    }

    #[test]
    fn to_records_order_is_stripe_count_independent() {
        let mut stores = [AnswerStore::with_stripes(1), AnswerStore::with_stripes(16)];
        for store in &mut stores {
            store.record(&fs(9), MemberId(2), 0.2);
            store.record(&fs(9), MemberId(1), 0.1);
            for n in 0..24 {
                store.record(&fs(n), MemberId(0), 0.5);
            }
        }
        assert_eq!(
            stores[0].to_records(),
            stores[1].to_records(),
            "canonical order must not depend on striping"
        );
    }

    #[test]
    fn persistence_logs_only_new_or_changed_answers() {
        use oassis_store_durable::{shared, InMemory, Persistence};
        let mem = std::sync::Arc::new(std::sync::Mutex::new(InMemory::new()));
        let store =
            AnswerStore::new().with_persistence(mem.clone() as SharedPersistence);
        store.record(&fs(1), MemberId(1), 0.5);
        store.record(&fs(1), MemberId(1), 0.5); // unchanged: no append
        store.record(&fs(1), MemberId(1), 0.75); // changed: appends
        store.record_tagged(&fs(2), MemberId(2), 0.25, Some(7));
        assert_eq!(mem.lock().unwrap().history_len(), 3);
        let tagged = mem
            .lock()
            .unwrap()
            .history()
            .iter()
            .filter(|r| matches!(r, WalRecord::Answer { session: Some(7), .. }))
            .count();
        assert_eq!(tagged, 1);

        // Replaying the log reproduces the store; replay does not re-log.
        let records = mem.lock().unwrap().replay().unwrap();
        let recovered = AnswerStore::new();
        recovered.replay_records(&records);
        let recovered = recovered.with_persistence(shared(InMemory::new()));
        assert_eq!(recovered.lookup(&fs(1), MemberId(1)), Some(0.75));
        assert_eq!(recovered.lookup(&fs(2), MemberId(2)), Some(0.25));
    }
}
