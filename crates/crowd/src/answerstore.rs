//! The cross-query answer store (the service-layer extension of §6 of the
//! paper's answer-reuse methodology).
//!
//! A [`CrowdCache`](crate::CrowdCache) lives for one query execution; the
//! [`AnswerStore`] outlives queries. Every committed concrete answer a
//! member gives through the service is logged here as a `(fact-set, member)
//! → support` record, and two reuse paths read it back:
//!
//! * **serve** — when a session is about to dispatch a concrete question
//!   the service first consults the store ([`lookup`](AnswerStore::lookup))
//!   and, on a hit, feeds the stored answer straight back without touching
//!   the crowd;
//! * **seed** — a newly admitted session receives a roster-filtered
//!   snapshot ([`seed_for`](AnswerStore::seed_for)) replayed into its
//!   `CrowdCache`, so questions the crowd already answered in earlier
//!   queries are never staged at all.
//!
//! Answers are threshold-independent (the same property that powers the
//! §6.3 replay methodology), so reuse across queries with different
//! `WITH SUPPORT` clauses is sound. Per-fact-set answer order is preserved
//! verbatim — re-running a fixed-sample aggregator over a seeded prefix
//! reproduces the original run's decisions deterministically.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use oassis_obs::{names, null_sink, EventSink, SinkExt};
use oassis_vocab::FactSet;

use crate::cache::CrowdCache;
use crate::member::MemberId;

/// A persistent member×question answer log shared across query sessions.
///
/// Interior-mutable (a `Mutex` guards the log) so one store can be read by
/// many sessions through a shared reference.
#[derive(Debug)]
pub struct AnswerStore {
    /// Per fact-set, the answers in insertion order (first answer first);
    /// a member re-answering the same fact-set overwrites in place.
    answers: Mutex<HashMap<FactSet, Vec<(MemberId, f64)>>>,
    sink: Arc<dyn EventSink>,
}

impl Default for AnswerStore {
    fn default() -> Self {
        AnswerStore {
            answers: Mutex::new(HashMap::new()),
            sink: null_sink(),
        }
    }
}

impl AnswerStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Report `answerstore.hit` / `answerstore.miss` lookups to `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Log `member`'s answer for `fs` (a repeat answer by the same member
    /// overwrites; members are assumed self-consistent).
    pub fn record(&self, fs: &FactSet, member: MemberId, support: f64) {
        let mut answers = self.answers.lock().expect("answer store poisoned");
        let entry = answers.entry(fs.clone()).or_default();
        match entry.iter_mut().find(|(m, _)| *m == member) {
            Some(slot) => slot.1 = support,
            None => entry.push((member, support)),
        }
    }

    /// `member`'s stored answer for `fs`, if any. This is the dispatch-time
    /// reuse probe: a hit spares one crowd question (counted as
    /// `answerstore.hit[serve]`), a miss means the crowd must be asked.
    pub fn lookup(&self, fs: &FactSet, member: MemberId) -> Option<f64> {
        let answers = self.answers.lock().expect("answer store poisoned");
        let found = answers
            .get(fs)
            .and_then(|v| v.iter().find(|(m, _)| *m == member))
            .map(|&(_, s)| s);
        match found {
            Some(_) => self.sink.count_labeled(names::ANSWERSTORE_HIT, "serve", 1),
            None => self.sink.count(names::ANSWERSTORE_MISS, 1),
        }
        found
    }

    /// Snapshot every stored answer given by one of `members`, preserving
    /// per-fact-set insertion order. The triples are replayed into a new
    /// session's `CrowdCache` at admission (see `CrowdCache::seed`).
    pub fn seed_for(&self, members: &[MemberId]) -> Vec<(FactSet, MemberId, f64)> {
        let answers = self.answers.lock().expect("answer store poisoned");
        let mut out = Vec::new();
        for (fs, entries) in answers.iter() {
            for &(m, s) in entries {
                if members.contains(&m) {
                    out.push((fs.clone(), m, s));
                }
            }
        }
        out
    }

    /// Merge every answer of a finished session's `cache` into the store.
    pub fn absorb_cache(&self, cache: &CrowdCache) {
        for (fs, entries) in cache.iter() {
            for &(m, s) in entries {
                self.record(fs, m, s);
            }
        }
    }

    /// Number of distinct fact-sets with at least one stored answer.
    pub fn len(&self) -> usize {
        self.answers.lock().expect("answer store poisoned").len()
    }

    /// Whether the store holds no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total `(fact-set, member)` answers stored.
    pub fn answer_count(&self) -> usize {
        self.answers
            .lock()
            .expect("answer store poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Serialize to the same line-oriented text format as
    /// [`CrowdCache::export_text`] (ids are vocabulary-interned integers,
    /// meaningful only against the same ontology build).
    pub fn export_text(&self) -> String {
        let mut cache = CrowdCache::new();
        let answers = self.answers.lock().expect("answer store poisoned");
        for (fs, entries) in answers.iter() {
            for &(m, s) in entries {
                cache.seed(fs, m, s);
            }
        }
        cache.export_text()
    }

    /// Parse a dump produced by [`export_text`](Self::export_text) (or by
    /// [`CrowdCache::export_text`] — the formats are identical).
    pub fn import_text(input: &str) -> Result<AnswerStore, String> {
        let cache = CrowdCache::import_text(input)?;
        let store = AnswerStore::new();
        store.absorb_cache(&cache);
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_vocab::{ElementId, Fact, RelationId};

    fn fs(n: u32) -> FactSet {
        FactSet::from_facts([Fact::new(ElementId(n), RelationId(0), ElementId(0))])
    }

    #[test]
    fn record_lookup_roundtrip() {
        let store = AnswerStore::new();
        assert!(store.is_empty());
        store.record(&fs(1), MemberId(1), 0.5);
        store.record(&fs(1), MemberId(2), 0.25);
        assert_eq!(store.lookup(&fs(1), MemberId(1)), Some(0.5));
        assert_eq!(store.lookup(&fs(1), MemberId(3)), None);
        assert_eq!(store.lookup(&fs(2), MemberId(1)), None);
        assert_eq!(store.len(), 1);
        assert_eq!(store.answer_count(), 2);
    }

    #[test]
    fn same_member_overwrites() {
        let store = AnswerStore::new();
        store.record(&fs(1), MemberId(1), 0.5);
        store.record(&fs(1), MemberId(1), 0.75);
        assert_eq!(store.lookup(&fs(1), MemberId(1)), Some(0.75));
        assert_eq!(store.answer_count(), 1);
    }

    #[test]
    fn seed_for_filters_by_roster_and_keeps_order() {
        let store = AnswerStore::new();
        store.record(&fs(1), MemberId(1), 0.1);
        store.record(&fs(1), MemberId(2), 0.2);
        store.record(&fs(1), MemberId(3), 0.3);
        let seeded = store.seed_for(&[MemberId(1), MemberId(3)]);
        let for_fs1: Vec<_> = seeded.iter().map(|(_, m, s)| (*m, *s)).collect();
        assert_eq!(
            for_fs1,
            vec![(MemberId(1), 0.1), (MemberId(3), 0.3)],
            "roster-filtered, insertion order preserved"
        );
    }

    #[test]
    fn export_import_roundtrip() {
        let store = AnswerStore::new();
        store.record(&fs(1), MemberId(1), 0.5);
        store.record(&fs(2), MemberId(2), 1.0 / 3.0);
        let text = store.export_text();
        let back = AnswerStore::import_text(&text).unwrap();
        assert_eq!(back.lookup(&fs(1), MemberId(1)), Some(0.5));
        assert_eq!(back.lookup(&fs(2), MemberId(2)), Some(1.0 / 3.0));
        assert_eq!(back.answer_count(), store.answer_count());
    }

    #[test]
    fn absorb_cache_merges_answers() {
        let mut cache = CrowdCache::new();
        cache.record(&fs(1), MemberId(1), 0.4);
        let store = AnswerStore::new();
        store.absorb_cache(&cache);
        assert_eq!(store.lookup(&fs(1), MemberId(1)), Some(0.4));
    }
}
