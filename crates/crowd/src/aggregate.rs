//! The answer-aggregation black-box of Section 4.2.
//!
//! Given the answers collected so far for one assignment, an [`Aggregator`]
//! decides whether (i) enough answers have been gathered and (ii) the
//! assignment is overall significant. The paper's real-crowd experiments use
//! the simple rule implemented by [`FixedSampleAggregator`]: require five
//! answers, then compare the average against the threshold.

/// The aggregator's verdict for one assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Enough answers, average support ≥ threshold.
    Significant,
    /// Enough answers, average support < threshold.
    Insignificant,
    /// Not enough answers yet — keep asking.
    Undecided,
}

/// Decides overall significance from collected answers.
///
/// Implementations may also weight answers by trust, detect outliers, bound
/// error probability etc.; the engine treats this as a black-box.
pub trait Aggregator {
    /// Decide from `answers` (one entry per distinct member asked) at
    /// `threshold`.
    fn decide(&self, answers: &[f64], threshold: f64) -> Decision;

    /// The aggregated support estimate (used for reporting), if decidable.
    fn estimate(&self, answers: &[f64]) -> Option<f64> {
        if answers.is_empty() {
            None
        } else {
            Some(answers.iter().sum::<f64>() / answers.len() as f64)
        }
    }
}

/// The paper's rule: `sample_size` answers, then average vs. threshold.
#[derive(Debug, Clone, Copy)]
pub struct FixedSampleAggregator {
    /// Number of answers required before deciding (the paper uses 5).
    pub sample_size: usize,
}

impl FixedSampleAggregator {
    /// The configuration used in the paper's real-crowd experiments.
    pub fn paper_default() -> Self {
        FixedSampleAggregator { sample_size: 5 }
    }
}

impl Aggregator for FixedSampleAggregator {
    fn decide(&self, answers: &[f64], threshold: f64) -> Decision {
        if answers.len() < self.sample_size {
            return Decision::Undecided;
        }
        let avg = answers.iter().sum::<f64>() / answers.len() as f64;
        // Supports are ratios of small integers (k-of-n transactions, scale
        // clicks); compare with a tolerance so that float summation order
        // cannot flip an exactly-at-threshold average.
        if avg + 1e-9 >= threshold {
            Decision::Significant
        } else {
            Decision::Insignificant
        }
    }
}

/// Majority vote: each answer votes significant iff it meets the threshold
/// individually; decide once `sample_size` votes are in. More robust than
/// averaging when a few members report extreme supports (one spammer's 1.0
/// cannot drag four honest 0.05s over the line).
#[derive(Debug, Clone, Copy)]
pub struct MajorityVoteAggregator {
    /// Votes required before deciding.
    pub sample_size: usize,
}

impl Aggregator for MajorityVoteAggregator {
    fn decide(&self, answers: &[f64], threshold: f64) -> Decision {
        if answers.len() < self.sample_size {
            return Decision::Undecided;
        }
        let yes = answers.iter().filter(|&&s| s >= threshold).count();
        if 2 * yes >= answers.len() {
            Decision::Significant
        } else {
            Decision::Insignificant
        }
    }
}

/// Sequential aggregation with early stopping — one realization of the
/// paper's "black-box designed to bound error probability": after
/// `min_samples` answers, decide as soon as the running mean is more than
/// `z` standard errors away from the threshold; otherwise keep collecting
/// until `max_samples` and fall back to the plain average. Saves answers on
/// clear-cut assignments while spending more on borderline ones.
#[derive(Debug, Clone, Copy)]
pub struct SequentialAggregator {
    /// Minimum answers before an early decision is allowed.
    pub min_samples: usize,
    /// Answers at which the average decides unconditionally.
    pub max_samples: usize,
    /// Confidence width in standard errors (e.g. 1.96 ≈ 95%).
    pub z: f64,
}

impl Aggregator for SequentialAggregator {
    fn decide(&self, answers: &[f64], threshold: f64) -> Decision {
        let n = answers.len();
        if n < self.min_samples {
            return Decision::Undecided;
        }
        let mean = answers.iter().sum::<f64>() / n as f64;
        if n >= self.max_samples {
            return if mean + 1e-9 >= threshold {
                Decision::Significant
            } else {
                Decision::Insignificant
            };
        }
        let var = answers.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
            / (n as f64 - 1.0).max(1.0);
        let stderr = (var / n as f64).sqrt();
        if mean - self.z * stderr > threshold {
            Decision::Significant
        } else if mean + self.z * stderr < threshold {
            Decision::Insignificant
        } else {
            Decision::Undecided
        }
    }
}

/// Single-user evaluation (Section 4.1): one answer decides.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleUserAggregator;

impl Aggregator for SingleUserAggregator {
    fn decide(&self, answers: &[f64], threshold: f64) -> Decision {
        match answers.last() {
            None => Decision::Undecided,
            Some(&s) if s >= threshold => Decision::Significant,
            Some(_) => Decision::Insignificant,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_sample_waits_for_enough_answers() {
        let agg = FixedSampleAggregator::paper_default();
        assert_eq!(agg.decide(&[0.5; 4], 0.2), Decision::Undecided);
        assert_eq!(agg.decide(&[0.5; 5], 0.2), Decision::Significant);
        assert_eq!(agg.decide(&[0.1; 5], 0.2), Decision::Insignificant);
    }

    #[test]
    fn threshold_is_inclusive() {
        let agg = FixedSampleAggregator { sample_size: 2 };
        assert_eq!(agg.decide(&[0.2, 0.2], 0.2), Decision::Significant);
    }

    #[test]
    fn example_3_1_averages() {
        // φ16: avg(1/3, 1/2) = 5/12 ≥ 0.4 → significant;
        // φ20: avg(1/6, 1/2) = 1/3 < 0.4 → insignificant.
        let agg = FixedSampleAggregator { sample_size: 2 };
        assert_eq!(agg.decide(&[1.0 / 3.0, 0.5], 0.4), Decision::Significant);
        assert_eq!(agg.decide(&[1.0 / 6.0, 0.5], 0.4), Decision::Insignificant);
    }

    #[test]
    fn estimate_is_average() {
        let agg = FixedSampleAggregator::paper_default();
        assert_eq!(agg.estimate(&[]), None);
        assert!((agg.estimate(&[0.25, 0.75]).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_user_decides_immediately() {
        let agg = SingleUserAggregator;
        assert_eq!(agg.decide(&[], 0.4), Decision::Undecided);
        assert_eq!(agg.decide(&[0.4], 0.4), Decision::Significant);
        assert_eq!(agg.decide(&[0.39], 0.4), Decision::Insignificant);
    }
}

#[cfg(test)]
mod variant_tests {
    use super::*;

    #[test]
    fn majority_vote_counts_votes_not_magnitudes() {
        let agg = MajorityVoteAggregator { sample_size: 5 };
        assert_eq!(agg.decide(&[0.5; 4], 0.2), Decision::Undecided);
        // One extreme 1.0 among four below-threshold answers: the average
        // would pass (avg 0.232 >= 0.2) but the vote correctly rejects.
        let answers = [1.0, 0.04, 0.04, 0.04, 0.04];
        assert_eq!(
            FixedSampleAggregator { sample_size: 5 }.decide(&answers, 0.2),
            Decision::Significant,
            "averaging is fooled"
        );
        assert_eq!(
            agg.decide(&answers, 0.2),
            Decision::Insignificant,
            "majority vote is not"
        );
        assert_eq!(
            agg.decide(&[0.5, 0.5, 0.5, 0.0, 0.0], 0.2),
            Decision::Significant
        );
    }

    #[test]
    fn sequential_decides_clear_cases_early() {
        let agg = SequentialAggregator {
            min_samples: 3,
            max_samples: 10,
            z: 1.96,
        };
        // Unanimous high supports: decided at 3 answers.
        assert_eq!(agg.decide(&[0.9, 0.92, 0.88], 0.2), Decision::Significant);
        // Unanimous zeros: decided at 3 answers.
        assert_eq!(agg.decide(&[0.0, 0.0, 0.0], 0.2), Decision::Insignificant);
        // Borderline: stays undecided until max_samples.
        let borderline = [0.1, 0.3, 0.2, 0.25, 0.15];
        assert_eq!(agg.decide(&borderline, 0.2), Decision::Undecided);
        let ten: Vec<f64> = (0..10)
            .map(|i| if i % 2 == 0 { 0.1 } else { 0.3 })
            .collect();
        assert_ne!(
            agg.decide(&ten, 0.2),
            Decision::Undecided,
            "max_samples forces"
        );
    }

    #[test]
    fn sequential_requires_min_samples() {
        let agg = SequentialAggregator {
            min_samples: 3,
            max_samples: 10,
            z: 1.96,
        };
        assert_eq!(agg.decide(&[1.0, 1.0], 0.2), Decision::Undecided);
    }
}
