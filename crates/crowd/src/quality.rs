//! Crowd-member quality control (Section 4.2, "Crowd member selection").
//!
//! The paper proposes checking *consistency between the answers of the same
//! user*, "taking advantage of the fact that the support for more specific
//! assignments cannot be larger". This module implements that check over a
//! member's answer log and a simple spammer filter on top of it.

use oassis_vocab::{FactSet, Vocabulary};

/// A monotonicity violation: `general ≤ specific` but the member reported a
/// strictly larger support for the more specific fact-set.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index (into the answer log) of the more general question.
    pub general_idx: usize,
    /// Index of the more specific question.
    pub specific_idx: usize,
    /// Reported support of the general fact-set.
    pub general_support: f64,
    /// Reported support of the specific fact-set.
    pub specific_support: f64,
}

/// Find all support-monotonicity violations in one member's answer log.
///
/// `tolerance` allows small inconsistencies in a cooperative member's
/// answers (the paper: "perhaps still allowing for small inconsistency");
/// a violation is reported only when
/// `specific_support > general_support + tolerance`.
pub fn consistency_violations(
    log: &[(FactSet, f64)],
    vocab: &Vocabulary,
    tolerance: f64,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, (a, sa)) in log.iter().enumerate() {
        for (j, (b, sb)) in log.iter().enumerate() {
            if i == j {
                continue;
            }
            // a ≤ b: a is more general, so sa must be ≥ sb (up to tolerance).
            if vocab.factset_leq(a, b) && *sb > *sa + tolerance {
                out.push(Violation {
                    general_idx: i,
                    specific_idx: j,
                    general_support: *sa,
                    specific_support: *sb,
                });
            }
        }
    }
    out
}

/// The fraction of comparable answer pairs that violate monotonicity
/// (0.0 = perfectly consistent; `None` if no pair is comparable).
pub fn inconsistency_rate(
    log: &[(FactSet, f64)],
    vocab: &Vocabulary,
    tolerance: f64,
) -> Option<f64> {
    let mut comparable = 0usize;
    for (i, (a, _)) in log.iter().enumerate() {
        for (j, (b, _)) in log.iter().enumerate() {
            if i != j && vocab.factset_leq(a, b) && a != b {
                comparable += 1;
            }
        }
    }
    if comparable == 0 {
        return None;
    }
    let violations = consistency_violations(log, vocab, tolerance).len();
    Some(violations as f64 / comparable as f64)
}

/// Simple spammer filter: flag a member whose inconsistency rate exceeds
/// `max_rate` (members with no comparable pairs pass).
pub fn is_spammer(
    log: &[(FactSet, f64)],
    vocab: &Vocabulary,
    tolerance: f64,
    max_rate: f64,
) -> bool {
    inconsistency_rate(log, vocab, tolerance).is_some_and(|r| r > max_rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_store::ontology::figure1_ontology;
    use oassis_vocab::Fact;

    fn fs(vocab: &Vocabulary, s: &str) -> FactSet {
        FactSet::from_facts([Fact::new(
            vocab.element(s).unwrap(),
            vocab.relation("doAt").unwrap(),
            vocab.element("Central Park").unwrap(),
        )])
    }

    #[test]
    fn honest_log_has_no_violations() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let log = vec![
            (fs(v, "Sport"), 0.5),
            (fs(v, "Biking"), 0.3),
            (fs(v, "Ball Game"), 0.2),
        ];
        assert!(consistency_violations(&log, v, 0.0).is_empty());
        assert_eq!(inconsistency_rate(&log, v, 0.0), Some(0.0));
        assert!(!is_spammer(&log, v, 0.0, 0.1));
    }

    #[test]
    fn specific_larger_than_general_is_flagged() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let log = vec![(fs(v, "Sport"), 0.2), (fs(v, "Biking"), 0.8)];
        let viol = consistency_violations(&log, v, 0.0);
        assert_eq!(viol.len(), 1);
        assert_eq!(viol[0].general_idx, 0);
        assert_eq!(viol[0].specific_idx, 1);
        assert!(is_spammer(&log, v, 0.0, 0.5));
    }

    #[test]
    fn tolerance_forgives_small_inconsistencies() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let log = vec![(fs(v, "Sport"), 0.5), (fs(v, "Biking"), 0.55)];
        assert_eq!(consistency_violations(&log, v, 0.1).len(), 0);
        assert_eq!(consistency_violations(&log, v, 0.01).len(), 1);
    }

    #[test]
    fn incomparable_answers_are_ignored() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let log = vec![(fs(v, "Biking"), 0.1), (fs(v, "Falafel"), 0.9)];
        assert!(consistency_violations(&log, v, 0.0).is_empty());
        assert_eq!(inconsistency_rate(&log, v, 0.0), None);
        assert!(!is_spammer(&log, v, 0.0, 0.0));
    }

    #[test]
    fn spammer_member_is_caught() {
        use crate::member::{CrowdMember, MemberId, SpammerMember};
        let o = figure1_ontology();
        let v = o.vocabulary();
        let mut spammer = SpammerMember::new(MemberId(1), 3);
        // Build a log by asking about a chain Sport ≥ Ball Game ≥ Basketball
        // repeatedly; random answers must eventually violate monotonicity.
        let mut log = Vec::new();
        for _ in 0..10 {
            for name in ["Sport", "Ball Game", "Basketball"] {
                let q = fs(v, name);
                let s = spammer.ask_concrete(&q);
                log.push((q, s));
            }
        }
        assert!(is_spammer(&log, v, 0.0, 0.05));
    }
}
