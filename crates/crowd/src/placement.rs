//! Consistent placement: one hash scheme shared by every sharded structure.
//!
//! Three layers partition state by hash — the [`SharedCrowdCache`] stripes
//! answers by fact-set, the [`AnswerStore`] stripes its log the same way,
//! and the runtime's sharded dispatch pins each member to one worker shard.
//! They must agree: a fact-set's cache stripe and store stripe are the same
//! index (so a future cross-node split can co-locate them), and a member's
//! shard never changes while the roster is stable. Centralizing the hashing
//! here is what makes that agreement a property instead of a convention.
//!
//! Hashes use [`DefaultHasher`] seeded identically everywhere; indices are
//! reduced modulo the structure's stripe/shard count. Counts need not be
//! powers of two, but the defaults are, so the modulo compiles to a mask.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use oassis_vocab::FactSet;

use crate::member::MemberId;

/// Stable hash of a fact-set, used for answer-store and cache striping.
pub fn hash_factset(fs: &FactSet) -> u64 {
    let mut h = DefaultHasher::new();
    fs.hash(&mut h);
    h.finish()
}

/// Stable hash of a member id, used for member-shard placement.
pub fn hash_member(member: MemberId) -> u64 {
    let mut h = DefaultHasher::new();
    member.0.hash(&mut h);
    h.finish()
}

/// Reduce a hash to an index in `0..count`. `count` must be non-zero.
pub fn index_for(hash: u64, count: usize) -> usize {
    debug_assert!(count > 0, "placement over zero shards");
    (hash as usize) % count
}

/// The stripe a fact-set lives in, for a structure with `count` stripes.
pub fn factset_stripe(fs: &FactSet, count: usize) -> usize {
    index_for(hash_factset(fs), count)
}

/// The shard a member is pinned to, for a pool with `count` shards.
/// Consistent: the same member always lands on the same shard for a given
/// shard count.
pub fn member_shard(member: MemberId, count: usize) -> usize {
    index_for(hash_member(member), count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_vocab::{ElementId, Fact, RelationId};

    fn fs(n: u32) -> FactSet {
        FactSet::from_facts([Fact::new(ElementId(n), RelationId(0), ElementId(0))])
    }

    #[test]
    fn placement_is_stable() {
        for n in 0..32 {
            assert_eq!(factset_stripe(&fs(n), 16), factset_stripe(&fs(n), 16));
            assert_eq!(
                member_shard(MemberId(n), 8),
                member_shard(MemberId(n), 8)
            );
        }
    }

    #[test]
    fn placement_stays_in_range() {
        for count in [1, 2, 3, 8, 16, 100] {
            for n in 0..64 {
                assert!(factset_stripe(&fs(n), count) < count);
                assert!(member_shard(MemberId(n), count) < count);
            }
        }
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        for n in 0..16 {
            assert_eq!(member_shard(MemberId(n), 1), 0);
            assert_eq!(factset_stripe(&fs(n), 1), 0);
        }
    }

    #[test]
    fn members_spread_across_shards() {
        let mut seen = [false; 8];
        for n in 0..1000 {
            seen[member_shard(MemberId(n), 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 members miss a shard of 8");
    }
}
