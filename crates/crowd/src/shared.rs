//! Thread-safe answer storage for the concurrent session runtime.
//!
//! [`SharedCrowdCache`] is a lock-striped view of the same data a
//! [`CrowdCache`] holds: answers keyed by fact-set, attributed to members.
//! Worker threads record answers as they arrive; the coordinator consults it
//! before dispatching so no question is ever asked twice of the same member,
//! and folds it into the canonical per-run [`CrowdCache`] when committing.
//! Striping by fact-set hash keeps workers on distinct fact-sets from
//! contending on one mutex.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use oassis_vocab::FactSet;

use crate::cache::CrowdCache;
use crate::member::MemberId;
use crate::placement;

/// Default number of independently locked stripes. A small power of two
/// (the modulo compiles to a mask); scale-sized runtimes pass an explicit
/// count via [`SharedCrowdCache::with_stripes`].
pub const DEFAULT_STRIPES: usize = 16;

type Shard = Mutex<HashMap<FactSet, Vec<(MemberId, f64)>>>;

/// A concurrently shared, lock-striped crowd-answer store.
///
/// Cloning is cheap and yields another handle to the *same* store.
#[derive(Debug, Clone)]
pub struct SharedCrowdCache {
    shards: Arc<[Shard]>,
}

impl Default for SharedCrowdCache {
    fn default() -> Self {
        Self::with_stripes(DEFAULT_STRIPES)
    }
}

impl SharedCrowdCache {
    /// An empty shared cache with [`DEFAULT_STRIPES`] stripes.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty shared cache with `stripes` independently locked stripes
    /// (clamped to ≥ 1). Placement uses the workspace-wide
    /// [`placement::factset_stripe`] hash, so a fact-set's cache stripe
    /// and [`AnswerStore`](crate::AnswerStore) stripe agree whenever the
    /// counts do.
    pub fn with_stripes(stripes: usize) -> Self {
        let shards: Vec<Shard> = (0..stripes.max(1)).map(|_| Shard::default()).collect();
        SharedCrowdCache {
            shards: shards.into(),
        }
    }

    /// How many stripes this cache was built with.
    pub fn stripes(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, fs: &FactSet) -> &Shard {
        &self.shards[placement::factset_stripe(fs, self.shards.len())]
    }

    /// Record `member`'s answer for `fs`. Returns `true` if this is the
    /// first answer stored for the `(fs, member)` pair; a repeat overwrites
    /// (members are self-consistent) and returns `false`.
    pub fn record(&self, fs: &FactSet, member: MemberId, support: f64) -> bool {
        let mut shard = self.shard(fs).lock().expect("shared-cache shard poisoned");
        let entry = shard.entry(fs.clone()).or_default();
        match entry.iter_mut().find(|(m, _)| *m == member) {
            Some(slot) => {
                slot.1 = support;
                false
            }
            None => {
                entry.push((member, support));
                true
            }
        }
    }

    /// `member`'s stored answer for `fs`, if any.
    pub fn lookup(&self, fs: &FactSet, member: MemberId) -> Option<f64> {
        let shard = self.shard(fs).lock().expect("shared-cache shard poisoned");
        shard
            .get(fs)
            .and_then(|v| v.iter().find(|(m, _)| *m == member))
            .map(|&(_, s)| s)
    }

    /// Whether `member` already answered about `fs`.
    pub fn has_answer_from(&self, fs: &FactSet, member: MemberId) -> bool {
        self.lookup(fs, member).is_some()
    }

    /// Total `(fact-set, member)` answer pairs stored across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("shared-cache shard poisoned")
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether no answers have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.lock().expect("shared-cache shard poisoned").is_empty())
    }

    /// Materialize the current contents as a plain [`CrowdCache`] (one
    /// question counted per stored answer). Answer order within a fact-set
    /// follows arrival order per shard; callers needing canonical ordering
    /// should rebuild from their own commit log instead.
    pub fn snapshot(&self) -> CrowdCache {
        let mut cache = CrowdCache::new();
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("shared-cache shard poisoned");
            for (fs, answers) in shard.iter() {
                for &(m, s) in answers {
                    cache.record(fs, m, s);
                }
            }
        }
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_vocab::{ElementId, Fact, RelationId};

    fn fs(n: u32) -> FactSet {
        FactSet::from_facts([Fact::new(ElementId(n), RelationId(0), ElementId(0))])
    }

    #[test]
    fn record_lookup_roundtrip() {
        let cache = SharedCrowdCache::new();
        assert!(cache.is_empty());
        assert!(cache.record(&fs(1), MemberId(1), 0.5));
        assert!(!cache.record(&fs(1), MemberId(1), 0.75), "overwrite");
        assert!(cache.record(&fs(1), MemberId(2), 0.25));
        assert_eq!(cache.lookup(&fs(1), MemberId(1)), Some(0.75));
        assert_eq!(cache.lookup(&fs(1), MemberId(2)), Some(0.25));
        assert_eq!(cache.lookup(&fs(2), MemberId(1)), None);
        assert!(cache.has_answer_from(&fs(1), MemberId(2)));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clone_shares_storage() {
        let a = SharedCrowdCache::new();
        let b = a.clone();
        a.record(&fs(7), MemberId(3), 1.0);
        assert_eq!(b.lookup(&fs(7), MemberId(3)), Some(1.0));
    }

    #[test]
    fn snapshot_materializes_all_shards() {
        let cache = SharedCrowdCache::new();
        for n in 0..64 {
            cache.record(&fs(n), MemberId(n % 5), 0.5);
        }
        let snap = cache.snapshot();
        assert_eq!(snap.unique_questions(), 64);
        assert_eq!(snap.total_questions(), 64);
    }

    #[test]
    fn stripe_count_is_configurable() {
        for stripes in [1, 3, 64] {
            let cache = SharedCrowdCache::with_stripes(stripes);
            assert_eq!(cache.stripes(), stripes);
            for n in 0..32 {
                cache.record(&fs(n), MemberId(n % 4), 0.5);
            }
            assert_eq!(cache.len(), 32);
            assert_eq!(cache.lookup(&fs(7), MemberId(3)), Some(0.5));
        }
        assert_eq!(SharedCrowdCache::with_stripes(0).stripes(), 1, "clamped");
    }

    #[test]
    fn concurrent_writers_do_not_lose_answers() {
        let cache = SharedCrowdCache::new();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cache = cache.clone();
                scope.spawn(move || {
                    for n in 0..50 {
                        cache.record(&fs(n), MemberId(t), f64::from(t) / 10.0);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 4 * 50);
        for t in 0..4u32 {
            assert_eq!(cache.lookup(&fs(17), MemberId(t)), Some(f64::from(t) / 10.0));
        }
    }
}
