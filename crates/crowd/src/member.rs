//! Crowd members: the question-answering interface and simulated members.
//!
//! The engine can only interact with a member through the two question types
//! of Section 2 (*concrete* and *specialization*) plus the UI's user-guided
//! pruning (Section 6.2). A member's personal DB is never read directly.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use oassis_vocab::{ElementId, FactSet, Vocabulary};

use oassis_obs::EventSink;

use crate::frequency::FrequencyScale;
use crate::transaction::{PersonalDb, SupportIndex};

/// Identifier of a crowd member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemberId(pub u32);

impl std::fmt::Display for MemberId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// The crowd-interaction interface.
///
/// Implementations must be *self-consistent*: repeated concrete questions
/// about the same fact-set should return the same support (honest members
/// are; [`SpammerMember`] deliberately is not).
///
/// Members are `Send` so the concurrent session runtime can hand them to
/// worker threads; every member is owned by exactly one thread at a time
/// (`Sync` is *not* required).
pub trait CrowdMember: Send {
    /// This member's id.
    fn id(&self) -> MemberId;

    /// Concrete question: "how often does fact-set `a` hold for you?".
    fn ask_concrete(&mut self, a: &FactSet) -> f64;

    /// Specialization question: "`base` holds for you — can you specify a
    /// more specific variant, and how often?". `candidates` are the
    /// specializations on offer (the UI's auto-completion suggestions);
    /// `None` means "none of these", which the engine interprets as support
    /// 0 for *all* candidates at once (Section 6.2).
    fn ask_specialization(
        &mut self,
        base: &FactSet,
        candidates: &[FactSet],
    ) -> Option<(usize, f64)>;

    /// User-guided pruning: which element values occurring in `a` are
    /// entirely irrelevant for this member (support 0 for any fact-set
    /// involving the value or a specialization of it)?
    fn irrelevant_elements(&mut self, a: &FactSet) -> Vec<ElementId>;

    /// Whether the member is willing to answer another question (members may
    /// leave at any point; Section 4.2).
    fn willing(&self) -> bool {
        true
    }

    /// Whether the member can answer a concrete question about `a` at all.
    ///
    /// Live members always can; *replay* members (Section 6.3's
    /// threshold-replay methodology) can only reproduce answers they gave in
    /// the original run, and the engine must not ask them anything else.
    fn can_answer(&self, _a: &FactSet) -> bool {
        true
    }

    /// The `MORE` prompt (Section 6.2's "more" button): "what else do you
    /// do when `base` holds?". The member may volunteer extra facts that
    /// co-occur with `base` in their history; empty = nothing to add.
    fn suggest_more(&mut self, _base: &FactSet) -> Vec<oassis_vocab::Fact> {
        Vec::new()
    }

    /// The simulated delivery model of the crowd channel: how long the
    /// session runtime should expect to wait for this member's next answer,
    /// or `None` if the answer never arrives (the runtime's per-question
    /// timeout fires instead). Real crowd answers come back with human-scale
    /// latency and non-response; simulated members default to instant,
    /// reliable delivery. Wrap any member in
    /// [`UnreliableMember`](crate::UnreliableMember) for a seeded
    /// latency/drop model.
    fn answer_delay(&mut self) -> Option<std::time::Duration> {
        Some(std::time::Duration::ZERO)
    }
}

/// A simulated honest member backed by a materialized [`PersonalDb`].
#[derive(Debug, Clone)]
pub struct DbMember {
    id: MemberId,
    db: PersonalDb,
    vocab: Arc<Vocabulary>,
    /// Snap answers to the five-level UI scale (Section 6.2) when true.
    discretize: bool,
    /// Max questions the member will answer (`None` = unlimited).
    quota: Option<usize>,
    answered: usize,
    /// Log of concrete answers, for consistency checking.
    log: Vec<(FactSet, f64)>,
    /// Uniform answer-noise amplitude (0 = exact).
    noise: f64,
    rng: SmallRng,
    /// Tid-list index answering support queries by intersection + popcount;
    /// `None` falls back to the transaction scan (benchmark baseline).
    index: Option<SupportIndex>,
}

impl DbMember {
    /// Create an honest member with exact (non-discretized) answers.
    /// Support queries go through a tid-list [`SupportIndex`] built here;
    /// see [`with_scan_counting`](Self::with_scan_counting) for the
    /// un-indexed baseline.
    pub fn new(id: MemberId, db: PersonalDb, vocab: Arc<Vocabulary>) -> Self {
        let index = Some(SupportIndex::build(&db, &vocab));
        DbMember {
            id,
            db,
            vocab,
            discretize: false,
            quota: None,
            answered: 0,
            log: Vec::new(),
            noise: 0.0,
            rng: SmallRng::seed_from_u64(id.0 as u64),
            index,
        }
    }

    /// Drop the tid-list index and count support by scanning transactions.
    /// Answers are identical; only wall-clock differs. The `scale` benchmark
    /// uses this as its baseline.
    pub fn with_scan_counting(mut self) -> Self {
        self.index = None;
        self
    }

    /// Rebuild the tid-list index with construction timed under the
    /// `crowd.tidlist.build` span on `sink`.
    pub fn with_tidlist_sink(mut self, sink: &Arc<dyn EventSink>) -> Self {
        self.index = Some(SupportIndex::build_with_sink(&self.db, &self.vocab, sink));
        self
    }

    /// Support of `a` in the member's DB, via the index when present.
    fn db_support(&self, a: &FactSet) -> f64 {
        match &self.index {
            Some(idx) => idx.support(a),
            None => self.db.support(a, &self.vocab),
        }
    }

    /// Snap answers to the five-level UI scale.
    pub fn with_discretization(mut self) -> Self {
        self.discretize = true;
        self
    }

    /// Limit the number of questions this member will answer.
    pub fn with_quota(mut self, quota: usize) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Add uniform noise in `[-amp, +amp]` to answers (then clamp to `[0, 1]`).
    pub fn with_noise(mut self, amp: f64, seed: u64) -> Self {
        self.noise = amp;
        self.rng = SmallRng::seed_from_u64(seed);
        self
    }

    /// This member's concrete-answer log (question, reported support).
    pub fn answer_log(&self) -> &[(FactSet, f64)] {
        &self.log
    }

    /// The member's true support for `a` (test/diagnostic use; the engine
    /// must go through [`CrowdMember::ask_concrete`]).
    pub fn true_support(&self, a: &FactSet) -> f64 {
        self.db_support(a)
    }

    fn report(&mut self, s: f64) -> f64 {
        let mut s = s;
        if self.noise > 0.0 {
            s = (s + self.rng.random_range(-self.noise..=self.noise)).clamp(0.0, 1.0);
        }
        if self.discretize {
            s = FrequencyScale::from_support(s).support();
        }
        s
    }
}

impl CrowdMember for DbMember {
    fn id(&self) -> MemberId {
        self.id
    }

    fn ask_concrete(&mut self, a: &FactSet) -> f64 {
        self.answered += 1;
        let s = self.report(self.db_support(a));
        self.log.push((a.clone(), s));
        s
    }

    fn ask_specialization(
        &mut self,
        _base: &FactSet,
        candidates: &[FactSet],
    ) -> Option<(usize, f64)> {
        self.answered += 1;
        // The member names the candidate most frequent in their own history,
        // provided it occurred at all.
        let best = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (i, self.db_support(c)))
            .filter(|(_, s)| *s > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        best.map(|(i, s)| (i, self.report(s)))
    }

    fn irrelevant_elements(&mut self, a: &FactSet) -> Vec<ElementId> {
        self.answered += 1;
        // An element is irrelevant if neither it nor any specialization of it
        // ever occurs in the member's history.
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for f in a.iter() {
            for e in [f.subject, f.object] {
                if !seen.insert(e) {
                    continue;
                }
                let relevant = self.db.iter().any(|t| {
                    t.facts.iter().any(|tf| {
                        self.vocab.elem_leq(e, tf.subject) || self.vocab.elem_leq(e, tf.object)
                    })
                });
                if !relevant {
                    out.push(e);
                }
            }
        }
        out
    }

    fn willing(&self) -> bool {
        self.quota.is_none_or(|q| self.answered < q)
    }

    fn suggest_more(&mut self, base: &FactSet) -> Vec<oassis_vocab::Fact> {
        self.answered += 1;
        // Volunteer the facts from transactions where `base` held that the
        // base does not already cover (Example 2.4's Boathouse tip).
        let mut out = Vec::new();
        for t in self.db.iter() {
            if !self.vocab.factset_leq(base, &t.facts) {
                continue;
            }
            for f in t.facts.iter() {
                if !self.vocab.fact_implied(f, base)
                    && !base.iter().any(|bf| self.vocab.fact_leq(bf, f))
                    && !out.contains(f)
                {
                    out.push(*f);
                }
            }
        }
        out
    }
}

/// A member with a fixed answer table — deterministic tests and the paper's
/// `u_avg` construction (Example 4.6).
#[derive(Debug, Clone)]
pub struct ScriptedMember {
    id: MemberId,
    answers: HashMap<FactSet, f64>,
    /// Answer for fact-sets not in the table.
    default: f64,
    /// Strict members refuse questions outside their table entirely
    /// (replay mode).
    strict: bool,
}

impl ScriptedMember {
    /// Create a scripted member.
    pub fn new(id: MemberId, answers: HashMap<FactSet, f64>, default: f64) -> Self {
        ScriptedMember {
            id,
            answers,
            default,
            strict: false,
        }
    }

    /// A replay member: answers only the fact-sets in its table
    /// ([`can_answer`](CrowdMember::can_answer) is false for the rest).
    pub fn new_strict(id: MemberId, answers: HashMap<FactSet, f64>) -> Self {
        ScriptedMember {
            id,
            answers,
            default: 0.0,
            strict: true,
        }
    }
}

impl CrowdMember for ScriptedMember {
    fn id(&self) -> MemberId {
        self.id
    }

    fn ask_concrete(&mut self, a: &FactSet) -> f64 {
        self.answers.get(a).copied().unwrap_or(self.default)
    }

    fn ask_specialization(
        &mut self,
        _base: &FactSet,
        candidates: &[FactSet],
    ) -> Option<(usize, f64)> {
        candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (i, self.answers.get(c).copied().unwrap_or(self.default)))
            .filter(|(_, s)| *s > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    fn irrelevant_elements(&mut self, _a: &FactSet) -> Vec<ElementId> {
        Vec::new()
    }

    fn can_answer(&self, a: &FactSet) -> bool {
        !self.strict || self.answers.contains_key(a)
    }
}

/// A spammer: answers uniformly at random, ignoring the question.
///
/// Used by the quality-control tests: spammers violate support monotonicity
/// and are caught by [`quality::consistency_violations`](crate::quality).
#[derive(Debug, Clone)]
pub struct SpammerMember {
    id: MemberId,
    rng: SmallRng,
}

impl SpammerMember {
    /// Create a seeded spammer.
    pub fn new(id: MemberId, seed: u64) -> Self {
        SpammerMember {
            id,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl CrowdMember for SpammerMember {
    fn id(&self) -> MemberId {
        self.id
    }

    fn ask_concrete(&mut self, _a: &FactSet) -> f64 {
        FrequencyScale::ALL[self.rng.random_range(0..FrequencyScale::ALL.len())].support()
    }

    fn ask_specialization(
        &mut self,
        _base: &FactSet,
        candidates: &[FactSet],
    ) -> Option<(usize, f64)> {
        if candidates.is_empty() || self.rng.random_range(0..4) == 0 {
            None
        } else {
            let i = self.rng.random_range(0..candidates.len());
            Some((i, self.ask_concrete(&candidates[i])))
        }
    }

    fn irrelevant_elements(&mut self, _a: &FactSet) -> Vec<ElementId> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::table3_dbs;
    use oassis_store::ontology::figure1_ontology;
    use oassis_vocab::Fact;

    fn setup() -> (Arc<Vocabulary>, DbMember, DbMember) {
        let o = figure1_ontology();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, d2) = table3_dbs(&vocab);
        let m1 = DbMember::new(MemberId(1), d1, Arc::clone(&vocab));
        let m2 = DbMember::new(MemberId(2), d2, Arc::clone(&vocab));
        (vocab, m1, m2)
    }

    fn fs(vocab: &Vocabulary, facts: &[(&str, &str, &str)]) -> FactSet {
        FactSet::from_facts(facts.iter().map(|(s, r, o)| {
            Fact::new(
                vocab.element(s).unwrap(),
                vocab.relation(r).unwrap(),
                vocab.element(o).unwrap(),
            )
        }))
    }

    #[test]
    fn concrete_answers_match_true_support() {
        let (vocab, mut m1, mut m2) = setup();
        let a = fs(
            &vocab,
            &[
                ("Biking", "doAt", "Central Park"),
                ("Falafel", "eatAt", "Maoz Veg."),
            ],
        );
        assert!((m1.ask_concrete(&a) - 1.0 / 3.0).abs() < 1e-12);
        assert!((m2.ask_concrete(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn discretized_answers_snap_to_scale() {
        let (vocab, m1, _) = setup();
        let mut m1 = m1.with_discretization();
        let a = fs(&vocab, &[("Biking", "doAt", "Central Park")]);
        let ans = m1.ask_concrete(&a);
        assert!(FrequencyScale::ALL.iter().any(|l| l.support() == ans));
    }

    #[test]
    fn specialization_picks_the_most_frequent_candidate() {
        let (vocab, mut m1, _) = setup();
        let base = fs(&vocab, &[("Sport", "doAt", "Central Park")]);
        let biking = fs(&vocab, &[("Biking", "doAt", "Central Park")]);
        let ball = fs(&vocab, &[("Ball Game", "doAt", "Central Park")]);
        let swim = fs(&vocab, &[("Swimming", "doAt", "Central Park")]);
        let cands = vec![swim.clone(), ball, biking];
        // u1: biking 2/6, ball game 2/6, swimming 0 — a max is returned and
        // it is never the zero-support swimming.
        let (idx, s) = m1.ask_specialization(&base, &cands).unwrap();
        assert_ne!(idx, 0);
        assert!((s - 1.0 / 3.0).abs() < 1e-12);
        // No candidate occurs → "none of these".
        assert!(m1.ask_specialization(&base, &[swim]).is_none());
        assert!(m1.ask_specialization(&base, &[]).is_none());
    }

    #[test]
    fn irrelevant_elements_are_those_never_occurring() {
        let (vocab, mut m1, _) = setup();
        // u1 never swims and never visits Madison Square.
        let a = fs(
            &vocab,
            &[
                ("Swimming", "doAt", "Madison Square"),
                ("Biking", "doAt", "Central Park"),
            ],
        );
        let irr = m1.irrelevant_elements(&a);
        let swimming = vocab.element("Swimming").unwrap();
        let madison = vocab.element("Madison Square").unwrap();
        let biking = vocab.element("Biking").unwrap();
        assert!(irr.contains(&swimming));
        assert!(irr.contains(&madison));
        assert!(!irr.contains(&biking));
    }

    #[test]
    fn general_elements_are_not_irrelevant() {
        let (vocab, mut m1, _) = setup();
        // `Sport` specializes to Biking which u1 does, so Sport is relevant.
        let a = fs(&vocab, &[("Sport", "doAt", "Central Park")]);
        let sport = vocab.element("Sport").unwrap();
        assert!(!m1.irrelevant_elements(&a).contains(&sport));
    }

    #[test]
    fn quota_limits_willingness() {
        let (vocab, m1, _) = setup();
        let mut m1 = m1.with_quota(2);
        let a = fs(&vocab, &[("Biking", "doAt", "Central Park")]);
        assert!(m1.willing());
        m1.ask_concrete(&a);
        assert!(m1.willing());
        m1.ask_concrete(&a);
        assert!(!m1.willing());
    }

    #[test]
    fn noise_stays_in_range_and_is_deterministic() {
        let (vocab, _, _) = setup();
        let o = figure1_ontology();
        let (d1, _) = table3_dbs(&vocab);
        let mk = || {
            DbMember::new(MemberId(9), d1.clone(), Arc::new(o.vocabulary().clone()))
                .with_noise(0.2, 42)
        };
        let a = fs(&vocab, &[("Biking", "doAt", "Central Park")]);
        let x = mk().ask_concrete(&a);
        let y = mk().ask_concrete(&a);
        assert_eq!(x, y, "same seed, same answer");
        assert!((0.0..=1.0).contains(&x));
    }

    #[test]
    fn scripted_member_uses_table_then_default() {
        let (vocab, _, _) = setup();
        let a = fs(&vocab, &[("Biking", "doAt", "Central Park")]);
        let mut table = HashMap::new();
        table.insert(a.clone(), 0.75);
        let mut m = ScriptedMember::new(MemberId(3), table, 0.1);
        assert_eq!(m.ask_concrete(&a), 0.75);
        let b = fs(&vocab, &[("Swimming", "doAt", "Central Park")]);
        assert_eq!(m.ask_concrete(&b), 0.1);
    }

    #[test]
    fn spammer_answers_are_on_scale_and_inconsistent_eventually() {
        let (vocab, _, _) = setup();
        let a = fs(&vocab, &[("Biking", "doAt", "Central Park")]);
        let mut m = SpammerMember::new(MemberId(4), 7);
        let answers: Vec<f64> = (0..20).map(|_| m.ask_concrete(&a)).collect();
        assert!(answers
            .iter()
            .all(|s| FrequencyScale::ALL.iter().any(|l| l.support() == *s)));
        assert!(
            answers.windows(2).any(|w| w[0] != w[1]),
            "a spammer varies answers to the same question"
        );
    }

    #[test]
    fn indexed_and_scan_members_answer_identically() {
        let (vocab, _, _) = setup();
        let (d1, _) = table3_dbs(&vocab);
        let queries = [
            fs(&vocab, &[]),
            fs(&vocab, &[("Biking", "doAt", "Central Park")]),
            fs(&vocab, &[("Sport", "doAt", "Central Park")]),
            fs(
                &vocab,
                &[
                    ("Biking", "doAt", "Central Park"),
                    ("Falafel", "eatAt", "Maoz Veg."),
                ],
            ),
            fs(&vocab, &[("Swimming", "doAt", "Madison Square")]),
        ];
        let mut indexed = DbMember::new(MemberId(1), d1.clone(), Arc::clone(&vocab));
        let mut scan =
            DbMember::new(MemberId(1), d1, Arc::clone(&vocab)).with_scan_counting();
        for q in &queries {
            let a = indexed.ask_concrete(q);
            let b = scan.ask_concrete(q);
            assert_eq!(a, b, "support diverged for {}", vocab.factset_to_string(q));
        }
    }

    #[test]
    fn answer_log_records_concrete_questions() {
        let (vocab, mut m1, _) = setup();
        let a = fs(&vocab, &[("Biking", "doAt", "Central Park")]);
        m1.ask_concrete(&a);
        assert_eq!(m1.answer_log().len(), 1);
        assert_eq!(m1.answer_log()[0].0, a);
    }
}
