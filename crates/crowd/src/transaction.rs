//! Transactions and personal databases (Section 2).
//!
//! A transaction is "the set of all the facts that hold for a person and an
//! occasion"; a personal database `D_u` is the bag of all of a member's
//! transactions. `D_u` is *virtual* — the engine can only learn about it
//! through questions — but simulated members materialize one here.

use std::collections::HashMap;
use std::sync::Arc;

use oassis_obs::{names, null_sink, EventSink, Span};
use oassis_vocab::{BitSet, Fact, FactSet, Vocabulary};

/// One past occasion: a fact-set with a unique id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Unique transaction id (e.g. `T1`..`T8` in Table 3).
    pub id: u64,
    /// The facts that held on this occasion.
    pub facts: FactSet,
}

impl Transaction {
    /// Construct a transaction.
    pub fn new(id: u64, facts: FactSet) -> Self {
        Transaction { id, facts }
    }
}

/// A member's personal database: a bag of transactions.
///
/// ```
/// use oassis_crowd::PersonalDb;
/// use oassis_crowd::transaction::table3_dbs;
/// use oassis_store::ontology::figure1_ontology;
/// use oassis_vocab::{Fact, FactSet};
///
/// let o = figure1_ontology();
/// let v = o.vocabulary();
/// let (d1, _) = table3_dbs(v);
/// let biking = FactSet::from_facts([Fact::new(
///     v.element("Biking").unwrap(),
///     v.relation("doAt").unwrap(),
///     v.element("Central Park").unwrap(),
/// )]);
/// assert!((d1.support(&biking, v) - 2.0 / 6.0).abs() < 1e-12); // T3 and T4
/// ```
#[derive(Debug, Clone, Default)]
pub struct PersonalDb {
    transactions: Vec<Transaction>,
}

impl PersonalDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from fact-sets, assigning sequential ids.
    pub fn from_factsets<I: IntoIterator<Item = FactSet>>(factsets: I) -> Self {
        PersonalDb {
            transactions: factsets
                .into_iter()
                .enumerate()
                .map(|(i, fs)| Transaction::new(i as u64, fs))
                .collect(),
        }
    }

    /// Append a transaction.
    pub fn push(&mut self, t: Transaction) {
        self.transactions.push(t);
    }

    /// Number of transactions `|D_u|`.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the database has no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Iterate transactions.
    pub fn iter(&self) -> std::slice::Iter<'_, Transaction> {
        self.transactions.iter()
    }

    /// Number of transactions that imply `a` (`a ≤ T` per Definition 2.5).
    pub fn count_implying(&self, a: &FactSet, vocab: &Vocabulary) -> usize {
        self.transactions
            .iter()
            .filter(|t| vocab.factset_leq(a, &t.facts))
            .count()
    }

    /// The personal support `supp_u(a)`; `0.0` for an empty database.
    pub fn support(&self, a: &FactSet, vocab: &Vocabulary) -> f64 {
        if self.transactions.is_empty() {
            return 0.0;
        }
        self.count_implying(a, vocab) as f64 / self.transactions.len() as f64
    }
}

/// An Eclat-style vertical index over a [`PersonalDb`]: for every fact `f`
/// that at least one transaction implies, the set of transaction ids (a
/// *tid-list*, as a [`BitSet`]) implying it.
///
/// Semantic implication is folded in at build time: transaction fact `g`
/// contributes its full ancestor closure
/// `ancestors(g.subject) × ancestors(g.relation) × ancestors(g.object)`,
/// so `tid ∈ tids[f]` iff `f ≤ g` for some `g` in the transaction. Support
/// counting then reduces to tid-list intersection plus popcount, replacing
/// the per-question `O(|D_u| · |a| · |T|)` scan of
/// [`PersonalDb::count_implying`] with `O(|a| · |D_u|/64)` word ops.
///
/// Counts are exact (not approximate), so the resulting `f64` supports are
/// bit-identical to the scan's.
#[derive(Debug, Clone, Default)]
pub struct SupportIndex {
    tids: HashMap<Fact, BitSet>,
    transactions: usize,
}

impl SupportIndex {
    /// Build the index for `db` (no instrumentation).
    pub fn build(db: &PersonalDb, vocab: &Vocabulary) -> Self {
        Self::build_with_sink(db, vocab, &null_sink())
    }

    /// Build the index, timing the construction under the
    /// `crowd.tidlist.build` span.
    pub fn build_with_sink(
        db: &PersonalDb,
        vocab: &Vocabulary,
        sink: &Arc<dyn EventSink>,
    ) -> Self {
        let _span = Span::enter(&**sink, names::CROWD_TIDLIST_BUILD);
        let n = db.len();
        // Ancestor closures are shared across transactions; memoize per value.
        let mut elem_anc = HashMap::new();
        let mut rel_anc = HashMap::new();
        for t in db.iter() {
            for g in t.facts.iter() {
                for e in [g.subject, g.object] {
                    elem_anc
                        .entry(e)
                        .or_insert_with(|| vocab.elements_order().ancestors(e));
                }
                rel_anc
                    .entry(g.relation)
                    .or_insert_with(|| vocab.relations_order().ancestors(g.relation));
            }
        }
        let mut tids: HashMap<Fact, BitSet> = HashMap::new();
        for (tid, t) in db.iter().enumerate() {
            for g in t.facts.iter() {
                for &s in &elem_anc[&g.subject] {
                    for &r in &rel_anc[&g.relation] {
                        for &o in &elem_anc[&g.object] {
                            tids.entry(Fact::new(s, r, o))
                                .or_insert_with(|| BitSet::new(n))
                                .insert(tid);
                        }
                    }
                }
            }
        }
        SupportIndex {
            tids,
            transactions: n,
        }
    }

    /// Number of transactions the index was built over.
    pub fn transactions(&self) -> usize {
        self.transactions
    }

    /// Number of distinct implied facts with a tid-list.
    pub fn distinct_facts(&self) -> usize {
        self.tids.len()
    }

    /// Number of transactions implying `a`: the intersection of the
    /// per-fact tid-lists. Equals [`PersonalDb::count_implying`] exactly.
    pub fn count_implying(&self, a: &FactSet) -> usize {
        let mut facts = a.iter();
        let Some(first) = facts.next() else {
            // The empty fact-set is implied by every transaction.
            return self.transactions;
        };
        let Some(seed) = self.tids.get(first) else {
            return 0;
        };
        let mut acc = seed.clone();
        for f in facts {
            match self.tids.get(f) {
                Some(list) => {
                    acc.intersect_with(list);
                    if acc.is_empty() {
                        return 0;
                    }
                }
                None => return 0,
            }
        }
        acc.len()
    }

    /// The personal support `supp_u(a)`; `0.0` for an empty database.
    /// Bit-identical to [`PersonalDb::support`] (same integer division).
    pub fn support(&self, a: &FactSet) -> f64 {
        if self.transactions == 0 {
            return 0.0;
        }
        self.count_implying(a) as f64 / self.transactions as f64
    }
}

/// Build the two example personal databases of Table 3 against the Figure 1
/// ontology's vocabulary. Returns `(D_u1, D_u2)`.
///
/// Kept in the library (not test-only) because tests, examples and benches
/// across the workspace replay the paper's running example.
pub fn table3_dbs(vocab: &Vocabulary) -> (PersonalDb, PersonalDb) {
    let f = |s: &str, r: &str, o: &str| {
        oassis_vocab::Fact::new(
            vocab.element(s).unwrap_or_else(|| panic!("element {s}")),
            vocab.relation(r).unwrap_or_else(|| panic!("relation {r}")),
            vocab.element(o).unwrap_or_else(|| panic!("element {o}")),
        )
    };
    let basketball_cp = f("Basketball", "doAt", "Central Park");
    let baseball_cp = f("Baseball", "doAt", "Central Park");
    let biking_cp = f("Biking", "doAt", "Central Park");
    let rent_bikes = f("Rent Bikes", "doAt", "Boathouse");
    let falafel_maoz = f("Falafel", "eatAt", "Maoz Veg.");
    let monkey_zoo = f("Feed a monkey", "doAt", "Bronx Zoo");
    let pasta_pine = f("Pasta", "eatAt", "Pine");

    let d1 = PersonalDb::from_factsets([
        // T1
        FactSet::from_facts([basketball_cp, falafel_maoz]),
        // T2
        FactSet::from_facts([monkey_zoo, pasta_pine]),
        // T3
        FactSet::from_facts([biking_cp, rent_bikes, falafel_maoz]),
        // T4
        FactSet::from_facts([baseball_cp, biking_cp, rent_bikes, falafel_maoz]),
        // T5
        FactSet::from_facts([monkey_zoo, pasta_pine]),
        // T6
        FactSet::from_facts([monkey_zoo]),
    ]);
    let d2 = PersonalDb::from_factsets([
        // T7
        FactSet::from_facts([baseball_cp, biking_cp, rent_bikes, falafel_maoz]),
        // T8
        FactSet::from_facts([monkey_zoo, pasta_pine]),
    ]);
    (d1, d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_store::ontology::figure1_ontology;
    use oassis_vocab::Fact;

    #[test]
    fn empty_db_has_zero_support() {
        let o = figure1_ontology();
        let db = PersonalDb::new();
        assert_eq!(db.support(&FactSet::new(), o.vocabulary()), 0.0);
        assert!(db.is_empty());
    }

    #[test]
    fn empty_factset_is_implied_by_every_transaction() {
        let o = figure1_ontology();
        let (d1, _) = table3_dbs(o.vocabulary());
        assert_eq!(d1.support(&FactSet::new(), o.vocabulary()), 1.0);
    }

    #[test]
    fn example_2_7_support() {
        // supp_u1({Pasta eatAt Pine, Activity doAt Bronx Zoo}) = 1/3,
        // implied by T2 and T5 out of 6 transactions.
        let o = figure1_ontology();
        let v = o.vocabulary();
        let (d1, _) = table3_dbs(v);
        let a = FactSet::from_facts([
            Fact::new(
                v.element("Pasta").unwrap(),
                v.relation("eatAt").unwrap(),
                v.element("Pine").unwrap(),
            ),
            Fact::new(
                v.element("Activity").unwrap(),
                v.relation("doAt").unwrap(),
                v.element("Bronx Zoo").unwrap(),
            ),
        ]);
        assert_eq!(d1.count_implying(&a, v), 2);
        assert!((d1.support(&a, v) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn example_3_1_supports_for_phi16_and_phi20() {
        // φ16(A_SAT) = {Biking doAt Central Park, _ eatAt Maoz Veg.} with the
        // blank bound to Falafel: supp_u1 = 2/6 = 1/3, supp_u2 = 1/2.
        let o = figure1_ontology();
        let v = o.vocabulary();
        let (d1, d2) = table3_dbs(v);
        let fact = |s: &str, r: &str, ob: &str| {
            Fact::new(
                v.element(s).unwrap(),
                v.relation(r).unwrap(),
                v.element(ob).unwrap(),
            )
        };
        let phi16 = FactSet::from_facts([
            fact("Biking", "doAt", "Central Park"),
            fact("Falafel", "eatAt", "Maoz Veg."),
        ]);
        assert!((d1.support(&phi16, v) - 1.0 / 3.0).abs() < 1e-12);
        assert!((d2.support(&phi16, v) - 1.0 / 2.0).abs() < 1e-12);
        // avg = 5/12 ≥ 0.4 ⇒ φ16 significant (checked at engine level).

        let phi20 = FactSet::from_facts([
            fact("Baseball", "doAt", "Central Park"),
            fact("Falafel", "eatAt", "Maoz Veg."),
        ]);
        assert!((d1.support(&phi20, v) - 1.0 / 6.0).abs() < 1e-12);
        assert!((d2.support(&phi20, v) - 1.0 / 2.0).abs() < 1e-12);
        // avg = 1/3 < 0.4 ⇒ φ20 insignificant.
    }

    #[test]
    fn support_uses_semantic_implication() {
        // Sport doAt Central Park is implied by Basketball/Biking/Baseball
        // transactions: T1, T3, T4 ⇒ 3/6.
        let o = figure1_ontology();
        let v = o.vocabulary();
        let (d1, _) = table3_dbs(v);
        let a = FactSet::from_facts([Fact::new(
            v.element("Sport").unwrap(),
            v.relation("doAt").unwrap(),
            v.element("Central Park").unwrap(),
        )]);
        assert_eq!(d1.count_implying(&a, v), 3);
    }

    #[test]
    fn support_index_matches_scan_on_table3() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let (d1, d2) = table3_dbs(v);
        for db in [&d1, &d2] {
            let idx = SupportIndex::build(db, v);
            assert_eq!(idx.transactions(), db.len());
            assert!(idx.distinct_facts() > 0);
            // Every single-fact query drawn from the index keys agrees, as
            // do several multi-fact combinations.
            let fact = |s: &str, r: &str, ob: &str| {
                Fact::new(
                    v.element(s).unwrap(),
                    v.relation(r).unwrap(),
                    v.element(ob).unwrap(),
                )
            };
            let queries = [
                FactSet::new(),
                FactSet::from_facts([fact("Sport", "doAt", "Central Park")]),
                FactSet::from_facts([
                    fact("Biking", "doAt", "Central Park"),
                    fact("Falafel", "eatAt", "Maoz Veg."),
                ]),
                FactSet::from_facts([
                    fact("Pasta", "eatAt", "Pine"),
                    fact("Activity", "doAt", "Bronx Zoo"),
                ]),
                FactSet::from_facts([fact("Swimming", "doAt", "Madison Square")]),
                FactSet::from_facts([
                    fact("Activity", "doAt", "Park"),
                    fact("Food", "eatAt", "Restaurant"),
                ]),
            ];
            for q in &queries {
                assert_eq!(
                    idx.count_implying(q),
                    db.count_implying(q, v),
                    "count mismatch for {}",
                    v.factset_to_string(q)
                );
                assert_eq!(idx.support(q), db.support(q, v));
            }
        }
    }

    #[test]
    fn support_index_on_empty_db() {
        let o = figure1_ontology();
        let idx = SupportIndex::build(&PersonalDb::new(), o.vocabulary());
        assert_eq!(idx.count_implying(&FactSet::new()), 0);
        assert_eq!(idx.support(&FactSet::new()), 0.0);
    }

    #[test]
    fn push_and_iter() {
        let mut db = PersonalDb::new();
        db.push(Transaction::new(7, FactSet::new()));
        assert_eq!(db.len(), 1);
        assert_eq!(db.iter().next().unwrap().id, 7);
    }
}
