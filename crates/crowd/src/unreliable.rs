//! A latency-and-reliability wrapper for simulated crowd members.
//!
//! Real crowd answers arrive over a high-latency, lossy channel: a worker
//! may take seconds to respond, or never respond at all (RDF-Hunter, Acosta
//! et al. 2015, makes the same observation for crowdsourced SPARQL). The
//! [`UnreliableMember`] wrapper gives any [`CrowdMember`] a seeded
//! [`ResponseModel`] so the concurrent session runtime's timeout / retry /
//! exclusion machinery can be exercised deterministically in simulation.

use std::collections::VecDeque;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use oassis_vocab::{ElementId, Fact, FactSet};

use crate::member::{CrowdMember, MemberId};

/// Simulated delivery characteristics of one member's crowd channel.
///
/// Each answer draws, in order, one drop decision and (if delivered) one
/// jitter sample from the wrapper's seeded generator, so a given
/// `(model, seed)` pair produces a reproducible delay sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseModel {
    /// Minimum time an answer takes to come back.
    pub base_delay: Duration,
    /// Extra uniformly-random latency added on top of `base_delay`.
    pub jitter: Duration,
    /// Probability in `[0, 1]` that an answer is never delivered at all
    /// (the runtime's per-question timeout fires instead).
    pub drop_probability: f64,
}

impl Default for ResponseModel {
    fn default() -> Self {
        ResponseModel {
            base_delay: Duration::ZERO,
            jitter: Duration::ZERO,
            drop_probability: 0.0,
        }
    }
}

impl ResponseModel {
    /// A perfectly reliable, instant channel (the trait default).
    pub fn instant() -> Self {
        Self::default()
    }

    /// A reliable channel with fixed latency `delay` and no jitter.
    pub fn latency(delay: Duration) -> Self {
        ResponseModel {
            base_delay: delay,
            ..Self::default()
        }
    }

    /// Set the uniform jitter added on top of the base delay.
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Set the probability that an answer is dropped entirely.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p.clamp(0.0, 1.0);
        self
    }
}

/// A [`CrowdMember`] wrapper that delivers the inner member's answers
/// through a simulated unreliable channel.
///
/// Question semantics are delegated verbatim to the inner member — only
/// [`answer_delay`](CrowdMember::answer_delay) is overridden, using a
/// dedicated seeded generator so the channel model never perturbs the
/// inner member's own randomness (noise, spam).
pub struct UnreliableMember {
    inner: Box<dyn CrowdMember>,
    model: ResponseModel,
    rng: SmallRng,
    script: VecDeque<Option<Duration>>,
}

impl std::fmt::Debug for UnreliableMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnreliableMember")
            .field("id", &self.inner.id())
            .field("model", &self.model)
            .finish_non_exhaustive()
    }
}

impl UnreliableMember {
    /// Wrap `inner` with `model`, seeding the channel's generator from
    /// `seed` (mix the member id in for per-member variety).
    pub fn new(inner: Box<dyn CrowdMember>, model: ResponseModel, seed: u64) -> Self {
        UnreliableMember {
            inner,
            model,
            rng: SmallRng::seed_from_u64(seed),
            script: VecDeque::new(),
        }
    }

    /// Script the first delay draws explicitly: each queued entry is
    /// returned (and consumed) by [`answer_delay`](CrowdMember::answer_delay)
    /// before the model takes over. `None` entries simulate drops. Lets a
    /// test pin an exact delay — e.g. an answer landing precisely on the
    /// runtime's deadline — without searching seed space.
    pub fn with_delay_script(
        mut self,
        delays: impl IntoIterator<Item = Option<Duration>>,
    ) -> Self {
        self.script.extend(delays);
        self
    }

    /// The channel model in effect.
    pub fn model(&self) -> ResponseModel {
        self.model
    }

    /// Unwrap, returning the inner member.
    pub fn into_inner(self) -> Box<dyn CrowdMember> {
        self.inner
    }
}

impl CrowdMember for UnreliableMember {
    fn id(&self) -> MemberId {
        self.inner.id()
    }

    fn ask_concrete(&mut self, a: &FactSet) -> f64 {
        self.inner.ask_concrete(a)
    }

    fn ask_specialization(
        &mut self,
        base: &FactSet,
        candidates: &[FactSet],
    ) -> Option<(usize, f64)> {
        self.inner.ask_specialization(base, candidates)
    }

    fn irrelevant_elements(&mut self, a: &FactSet) -> Vec<ElementId> {
        self.inner.irrelevant_elements(a)
    }

    fn willing(&self) -> bool {
        self.inner.willing()
    }

    fn can_answer(&self, a: &FactSet) -> bool {
        self.inner.can_answer(a)
    }

    fn suggest_more(&mut self, base: &FactSet) -> Vec<Fact> {
        self.inner.suggest_more(base)
    }

    fn answer_delay(&mut self) -> Option<Duration> {
        if let Some(scripted) = self.script.pop_front() {
            return scripted;
        }
        if self.model.drop_probability > 0.0
            && self.rng.random_range(0.0..1.0) < self.model.drop_probability
        {
            return None;
        }
        let jitter = if self.model.jitter.is_zero() {
            Duration::ZERO
        } else {
            let nanos = self.model.jitter.as_nanos() as u64;
            Duration::from_nanos(self.rng.random_range(0..=nanos))
        };
        Some(self.model.base_delay + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::ScriptedMember;

    fn scripted(id: u32) -> Box<dyn CrowdMember> {
        Box::new(ScriptedMember::new(
            MemberId(id),
            std::collections::HashMap::new(),
            0.5,
        ))
    }

    #[test]
    fn instant_model_is_transparent() {
        let mut m = UnreliableMember::new(scripted(1), ResponseModel::instant(), 7);
        assert_eq!(m.id(), MemberId(1));
        assert_eq!(m.answer_delay(), Some(Duration::ZERO));
        assert_eq!(m.ask_concrete(&FactSet::new()), 0.5);
    }

    #[test]
    fn latency_model_delays_within_bounds() {
        let model = ResponseModel::latency(Duration::from_millis(2))
            .with_jitter(Duration::from_millis(3));
        let mut m = UnreliableMember::new(scripted(1), model, 7);
        for _ in 0..50 {
            let d = m.answer_delay().expect("no drops configured");
            assert!(d >= Duration::from_millis(2));
            assert!(d <= Duration::from_millis(5));
        }
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let model = ResponseModel::instant().with_drop_probability(1.0);
        let mut m = UnreliableMember::new(scripted(1), model, 7);
        for _ in 0..10 {
            assert_eq!(m.answer_delay(), None);
        }
    }

    #[test]
    fn delay_sequence_is_seed_deterministic() {
        let model = ResponseModel::latency(Duration::from_millis(1))
            .with_jitter(Duration::from_millis(4))
            .with_drop_probability(0.3);
        let mut a = UnreliableMember::new(scripted(1), model, 42);
        let mut b = UnreliableMember::new(scripted(1), model, 42);
        let seq_a: Vec<_> = (0..32).map(|_| a.answer_delay()).collect();
        let seq_b: Vec<_> = (0..32).map(|_| b.answer_delay()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(Option::is_none), "some drops at p=0.3");
        assert!(seq_a.iter().any(Option::is_some), "some deliveries at p=0.3");
    }

    #[test]
    fn delay_script_takes_precedence_then_model_resumes() {
        let model = ResponseModel::latency(Duration::from_millis(1));
        let mut m = UnreliableMember::new(scripted(1), model, 7).with_delay_script([
            Some(Duration::from_millis(250)),
            None,
        ]);
        assert_eq!(m.answer_delay(), Some(Duration::from_millis(250)));
        assert_eq!(m.answer_delay(), None, "scripted drop");
        assert_eq!(
            m.answer_delay(),
            Some(Duration::from_millis(1)),
            "model resumes past the script"
        );
    }

    #[test]
    fn channel_rng_does_not_touch_inner_member() {
        let model = ResponseModel::instant().with_drop_probability(0.5);
        let mut m = UnreliableMember::new(scripted(1), model, 9);
        let before = m.ask_concrete(&FactSet::new());
        for _ in 0..16 {
            let _ = m.answer_delay();
        }
        assert_eq!(m.ask_concrete(&FactSet::new()), before);
    }
}
