//! The five-level frequency scale of the prototype UI (Section 6.2).
//!
//! Crowd members answer "How often do you ...?" by clicking one of five
//! options, which the system interprets as the support values
//! `0, 0.25, 0.5, 0.75, 1`.

/// A UI frequency answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FrequencyScale {
    /// "never" → 0.0
    Never,
    /// "rarely" → 0.25
    Rarely,
    /// "sometimes" → 0.5
    Sometimes,
    /// "often" → 0.75
    Often,
    /// "very often" → 1.0
    VeryOften,
}

impl FrequencyScale {
    /// All levels, ascending.
    pub const ALL: [FrequencyScale; 5] = [
        FrequencyScale::Never,
        FrequencyScale::Rarely,
        FrequencyScale::Sometimes,
        FrequencyScale::Often,
        FrequencyScale::VeryOften,
    ];

    /// The support value this level is interpreted as.
    pub fn support(self) -> f64 {
        match self {
            FrequencyScale::Never => 0.0,
            FrequencyScale::Rarely => 0.25,
            FrequencyScale::Sometimes => 0.5,
            FrequencyScale::Often => 0.75,
            FrequencyScale::VeryOften => 1.0,
        }
    }

    /// The level a member with true support `s` would click (nearest level).
    pub fn from_support(s: f64) -> Self {
        let s = s.clamp(0.0, 1.0);
        let idx = (s * 4.0).round() as usize;
        Self::ALL[idx]
    }

    /// The UI label.
    pub fn label(self) -> &'static str {
        match self {
            FrequencyScale::Never => "never",
            FrequencyScale::Rarely => "rarely",
            FrequencyScale::Sometimes => "sometimes",
            FrequencyScale::Often => "often",
            FrequencyScale::VeryOften => "very often",
        }
    }
}

/// Interpret a natural "n times per year" answer as support (n/365, capped),
/// the interpretation used for concrete questions in Section 2.
pub fn times_per_year_to_support(times: f64) -> f64 {
    (times / 365.0).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_values_match_the_paper() {
        let got: Vec<f64> = FrequencyScale::ALL.iter().map(|l| l.support()).collect();
        assert_eq!(got, [0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn from_support_rounds_to_nearest() {
        assert_eq!(FrequencyScale::from_support(0.0), FrequencyScale::Never);
        assert_eq!(FrequencyScale::from_support(0.1), FrequencyScale::Never);
        assert_eq!(FrequencyScale::from_support(0.13), FrequencyScale::Rarely);
        assert_eq!(
            FrequencyScale::from_support(0.49),
            FrequencyScale::Sometimes
        );
        assert_eq!(FrequencyScale::from_support(0.9), FrequencyScale::VeryOften);
        assert_eq!(FrequencyScale::from_support(2.0), FrequencyScale::VeryOften);
        assert_eq!(FrequencyScale::from_support(-1.0), FrequencyScale::Never);
    }

    #[test]
    fn roundtrip_is_identity_on_scale_points() {
        for l in FrequencyScale::ALL {
            assert_eq!(FrequencyScale::from_support(l.support()), l);
        }
    }

    #[test]
    fn times_per_year() {
        // "Once a month" ≈ 12/365 (the paper's example).
        assert!((times_per_year_to_support(12.0) - 12.0 / 365.0).abs() < 1e-12);
        assert_eq!(times_per_year_to_support(1000.0), 1.0);
        assert_eq!(times_per_year_to_support(0.0), 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(FrequencyScale::Sometimes.label(), "sometimes");
    }
}
