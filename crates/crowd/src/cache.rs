//! The CrowdCache (Section 6.1, 6.3): per-fact-set answer storage.
//!
//! Answers are independent of the support threshold, so a query executed at
//! threshold 0.2 can be *replayed* at higher thresholds without asking the
//! crowd again — the methodology behind Figures 4a–4c. The cache records,
//! for every fact-set ever asked about, which member answered what, and
//! counts both unique questions (crowd complexity, Section 4.1) and total
//! questions (overall user effort, Section 6.3).

use std::collections::HashMap;
use std::sync::Arc;

use oassis_obs::{names, null_sink, EventSink, SinkExt};
use oassis_vocab::FactSet;

use crate::member::MemberId;

/// Answer storage for one query execution.
#[derive(Debug, Clone)]
pub struct CrowdCache {
    answers: HashMap<FactSet, Vec<(MemberId, f64)>>,
    total_questions: usize,
    sink: Arc<dyn EventSink>,
}

impl Default for CrowdCache {
    fn default() -> Self {
        CrowdCache {
            answers: HashMap::new(),
            total_questions: 0,
            sink: null_sink(),
        }
    }
}

impl CrowdCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Report [`cached_answer`](Self::cached_answer) hits and misses
    /// (`crowd.cache.hit` / `crowd.cache.miss`) to `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Record `member`'s answer for `fs`. Counts one question; a repeat
    /// answer by the same member overwrites (members are assumed
    /// self-consistent; spam detection happens elsewhere).
    pub fn record(&mut self, fs: &FactSet, member: MemberId, support: f64) {
        self.total_questions += 1;
        let entry = self.answers.entry(fs.clone()).or_default();
        match entry.iter_mut().find(|(m, _)| *m == member) {
            Some(slot) => slot.1 = support,
            None => entry.push((member, support)),
        }
    }

    /// Record `member`'s answer for `fs` **without** counting a question:
    /// the answer was carried over from a previous query (the cross-query
    /// [`AnswerStore`](crate::AnswerStore)), so no user effort was spent in
    /// this run. Ordering matters — seeded answers keep their original
    /// per-fact-set insertion order, which is what makes re-running the
    /// aggregator over them reproduce the earlier run's decisions.
    pub fn seed(&mut self, fs: &FactSet, member: MemberId, support: f64) {
        let entry = self.answers.entry(fs.clone()).or_default();
        match entry.iter_mut().find(|(m, _)| *m == member) {
            Some(slot) => slot.1 = support,
            None => entry.push((member, support)),
        }
    }

    /// All answers recorded for `fs`.
    pub fn answers(&self, fs: &FactSet) -> &[(MemberId, f64)] {
        self.answers.get(fs).map_or(&[], Vec::as_slice)
    }

    /// Just the support values for `fs` (aggregator input).
    pub fn supports(&self, fs: &FactSet) -> Vec<f64> {
        self.answers(fs).iter().map(|&(_, s)| s).collect()
    }

    /// Whether `member` already answered about `fs`.
    pub fn has_answer_from(&self, fs: &FactSet, member: MemberId) -> bool {
        self.answers(fs).iter().any(|(m, _)| *m == member)
    }

    /// `member`'s recorded answer for `fs`, if any. Unlike the passive
    /// [`has_answer_from`](Self::has_answer_from) probe used for
    /// scheduling, this is the *answer-reuse* lookup: it counts a
    /// `crowd.cache.hit` when the stored answer spares a crowd question and
    /// a `crowd.cache.miss` when the crowd must be asked.
    pub fn cached_answer(&self, fs: &FactSet, member: MemberId) -> Option<f64> {
        let found = self
            .answers(fs)
            .iter()
            .find(|(m, _)| *m == member)
            .map(|&(_, s)| s);
        match found {
            Some(_) => self.sink.count(names::CROWD_CACHE_HIT, 1),
            None => self.sink.count(names::CROWD_CACHE_MISS, 1),
        }
        found
    }

    /// Number of distinct fact-sets asked about (crowd complexity).
    pub fn unique_questions(&self) -> usize {
        self.answers.len()
    }

    /// Total questions asked, including repetitions across members.
    pub fn total_questions(&self) -> usize {
        self.total_questions
    }

    /// Iterate `(fact-set, answers)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&FactSet, &[(MemberId, f64)])> {
        self.answers.iter().map(|(k, v)| (k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_vocab::{ElementId, Fact, RelationId};

    fn fs(n: u32) -> FactSet {
        FactSet::from_facts([Fact::new(ElementId(n), RelationId(0), ElementId(0))])
    }

    #[test]
    fn record_and_read_back() {
        let mut c = CrowdCache::new();
        c.record(&fs(1), MemberId(1), 0.5);
        c.record(&fs(1), MemberId(2), 0.25);
        assert_eq!(c.supports(&fs(1)), [0.5, 0.25]);
        assert_eq!(c.answers(&fs(2)), []);
        assert_eq!(c.unique_questions(), 1);
        assert_eq!(c.total_questions(), 2);
    }

    #[test]
    fn same_member_overwrites_but_still_counts_effort() {
        let mut c = CrowdCache::new();
        c.record(&fs(1), MemberId(1), 0.5);
        c.record(&fs(1), MemberId(1), 0.75);
        assert_eq!(c.supports(&fs(1)), [0.75]);
        assert_eq!(c.total_questions(), 2, "effort counts repetitions");
        assert_eq!(c.unique_questions(), 1);
    }

    #[test]
    fn has_answer_from() {
        let mut c = CrowdCache::new();
        c.record(&fs(1), MemberId(1), 0.5);
        assert!(c.has_answer_from(&fs(1), MemberId(1)));
        assert!(!c.has_answer_from(&fs(1), MemberId(2)));
        assert!(!c.has_answer_from(&fs(2), MemberId(1)));
    }

    #[test]
    fn iter_visits_everything() {
        let mut c = CrowdCache::new();
        c.record(&fs(1), MemberId(1), 0.5);
        c.record(&fs(2), MemberId(1), 0.1);
        assert_eq!(c.iter().count(), 2);
    }
}

impl CrowdCache {
    /// Serialize to a line-oriented text format (ids are vocabulary-interned
    /// integers, so the dump is only meaningful against the same ontology
    /// build): `member support s,r,o;s,r,o;...` with `-` for the empty
    /// fact-set.
    pub fn export_text(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for (fs, answers) in self.iter() {
            let facts = if fs.is_empty() {
                "-".to_owned()
            } else {
                fs.iter()
                    .map(|f| format!("{},{},{}", f.subject.0, f.relation.0, f.object.0))
                    .collect::<Vec<_>>()
                    .join(";")
            };
            for &(m, s) in answers {
                lines.push(format!("{} {} {}", m.0, s, facts));
            }
        }
        lines.sort();
        let mut out = String::from("# oassis crowd cache v1\n");
        out.push_str(&lines.join("\n"));
        out.push('\n');
        out
    }

    /// Parse a dump produced by [`export_text`](Self::export_text).
    /// The total-question counter is restored as one question per answer.
    pub fn import_text(input: &str) -> Result<CrowdCache, String> {
        use oassis_vocab::{ElementId, Fact, RelationId};
        let mut cache = CrowdCache::new();
        for (no, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let (Some(m), Some(s), Some(facts)) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {}: expected `member support facts`", no + 1));
            };
            let member = MemberId(
                m.parse()
                    .map_err(|e| format!("line {}: bad member id: {e}", no + 1))?,
            );
            let support: f64 = s
                .parse()
                .map_err(|e| format!("line {}: bad support: {e}", no + 1))?;
            let fs = if facts == "-" {
                FactSet::new()
            } else {
                let mut v = Vec::new();
                for triple in facts.split(';') {
                    let ids: Vec<&str> = triple.split(',').collect();
                    let [s, r, o] = ids.as_slice() else {
                        return Err(format!("line {}: bad fact {triple:?}", no + 1));
                    };
                    let parse = |x: &str| {
                        x.parse::<u32>()
                            .map_err(|e| format!("line {}: {e}", no + 1))
                    };
                    v.push(Fact::new(
                        ElementId(parse(s)?),
                        RelationId(parse(r)?),
                        ElementId(parse(o)?),
                    ));
                }
                FactSet::from_facts(v)
            };
            cache.record(&fs, member, support);
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod export_tests {
    use super::*;
    use oassis_vocab::{ElementId, Fact, RelationId};

    fn fs(n: u32) -> FactSet {
        FactSet::from_facts([Fact::new(ElementId(n), RelationId(1), ElementId(n + 1))])
    }

    #[test]
    fn roundtrip() {
        let mut c = CrowdCache::new();
        c.record(&fs(1), MemberId(1), 0.5);
        c.record(&fs(1), MemberId(2), 0.25);
        c.record(&fs(7), MemberId(1), 1.0 / 3.0);
        c.record(&FactSet::new(), MemberId(3), 1.0);
        let text = c.export_text();
        let back = CrowdCache::import_text(&text).unwrap();
        assert_eq!(back.unique_questions(), c.unique_questions());
        assert_eq!(back.total_questions(), 4);
        let mut a = back.supports(&fs(1));
        let mut b = c.supports(&fs(1));
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a, b);
        assert_eq!(back.supports(&fs(7)), c.supports(&fs(7)));
        assert_eq!(back.supports(&FactSet::new()), vec![1.0]);
    }

    #[test]
    fn import_rejects_malformed_lines() {
        assert!(CrowdCache::import_text("1 0.5").is_err());
        assert!(CrowdCache::import_text("x 0.5 -").is_err());
        assert!(CrowdCache::import_text("1 nope -").is_err());
        assert!(CrowdCache::import_text("1 0.5 1,2").is_err());
        assert!(CrowdCache::import_text("1 0.5 a,b,c").is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let cache = CrowdCache::import_text("# header\n\n1 0.5 -\n").unwrap();
        assert_eq!(cache.total_questions(), 1);
    }
}
