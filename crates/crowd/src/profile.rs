//! Crowd-member selection (Section 4.2 / Section 8).
//!
//! The paper proposes extending queries with "a special SPARQL-like
//! selection on crowd members". We realize this with the machinery already
//! at hand: a member's **profile** is a fact-set describing them
//! (`u livesIn Tel Aviv. u memberOf Families`), and a selection
//! *requirement* is a more general fact-set; the member qualifies iff the
//! requirement is semantically implied by their profile
//! (`requirement ≤ profile`, Definition 2.5) — so "lives in some city"
//! selects everyone with a concrete `livesIn` fact.

use oassis_vocab::{FactSet, Vocabulary};

use crate::member::{CrowdMember, MemberId};

/// Wraps any member with a profile fact-set.
pub struct ProfiledMember<M> {
    inner: M,
    profile: FactSet,
}

impl<M: CrowdMember> ProfiledMember<M> {
    /// Attach `profile` to `inner`.
    pub fn new(inner: M, profile: FactSet) -> Self {
        ProfiledMember { inner, profile }
    }

    /// The wrapped member.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// This member's profile.
    pub fn profile(&self) -> &FactSet {
        &self.profile
    }

    /// Whether this member satisfies `requirement` (`requirement ≤ profile`).
    pub fn satisfies(&self, requirement: &FactSet, vocab: &Vocabulary) -> bool {
        vocab.factset_leq(requirement, &self.profile)
    }
}

impl<M: CrowdMember> CrowdMember for ProfiledMember<M> {
    fn id(&self) -> MemberId {
        self.inner.id()
    }

    fn ask_concrete(&mut self, a: &FactSet) -> f64 {
        self.inner.ask_concrete(a)
    }

    fn ask_specialization(
        &mut self,
        base: &FactSet,
        candidates: &[FactSet],
    ) -> Option<(usize, f64)> {
        self.inner.ask_specialization(base, candidates)
    }

    fn irrelevant_elements(&mut self, a: &FactSet) -> Vec<oassis_vocab::ElementId> {
        self.inner.irrelevant_elements(a)
    }

    fn willing(&self) -> bool {
        self.inner.willing()
    }

    fn can_answer(&self, a: &FactSet) -> bool {
        self.inner.can_answer(a)
    }
}

/// Retain only the members whose profiles satisfy `requirement`.
pub fn select_members<M: CrowdMember>(
    members: Vec<ProfiledMember<M>>,
    requirement: &FactSet,
    vocab: &Vocabulary,
) -> Vec<ProfiledMember<M>> {
    members
        .into_iter()
        .filter(|m| m.satisfies(requirement, vocab))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::ScriptedMember;
    use oassis_vocab::{Fact, Vocabulary};

    fn vocab() -> Vocabulary {
        let mut b = Vocabulary::builder();
        b.element_isa("Tel Aviv", "City")
            .element_isa("NYC", "City")
            .element_isa("Local", "Person")
            .element_isa("Tourist", "Person");
        b.relation("livesIn");
        b.relation("isA");
        b.build().unwrap()
    }

    fn profile(v: &Vocabulary, city: &str, kind: &str) -> FactSet {
        FactSet::from_facts([
            Fact::new(
                v.element(kind).unwrap(),
                v.relation("isA").unwrap(),
                v.element(kind).unwrap(),
            ),
            Fact::new(
                v.element(kind).unwrap(),
                v.relation("livesIn").unwrap(),
                v.element(city).unwrap(),
            ),
        ])
    }

    fn member(id: u32, v: &Vocabulary, city: &str, kind: &str) -> ProfiledMember<ScriptedMember> {
        ProfiledMember::new(
            ScriptedMember::new(MemberId(id), Default::default(), 0.3),
            profile(v, city, kind),
        )
    }

    #[test]
    fn concrete_requirement_selects_exact_matches() {
        let v = vocab();
        let members = vec![
            member(1, &v, "Tel Aviv", "Local"),
            member(2, &v, "NYC", "Tourist"),
        ];
        let req = FactSet::from_facts([Fact::new(
            v.element("Local").unwrap(),
            v.relation("livesIn").unwrap(),
            v.element("Tel Aviv").unwrap(),
        )]);
        let selected = select_members(members, &req, &v);
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].id(), MemberId(1));
    }

    #[test]
    fn general_requirement_selects_semantically() {
        // "Lives in some city" — City generalizes both Tel Aviv and NYC,
        // and Person generalizes both member kinds.
        let v = vocab();
        let members = vec![
            member(1, &v, "Tel Aviv", "Local"),
            member(2, &v, "NYC", "Tourist"),
        ];
        let req = FactSet::from_facts([Fact::new(
            v.element("Person").unwrap(),
            v.relation("livesIn").unwrap(),
            v.element("City").unwrap(),
        )]);
        assert_eq!(select_members(members, &req, &v).len(), 2);
    }

    #[test]
    fn empty_requirement_selects_everyone() {
        let v = vocab();
        let members = vec![member(1, &v, "NYC", "Tourist")];
        assert_eq!(select_members(members, &FactSet::new(), &v).len(), 1);
    }

    #[test]
    fn profiled_member_delegates_answers() {
        let v = vocab();
        let mut m = member(7, &v, "NYC", "Local");
        assert_eq!(m.id(), MemberId(7));
        assert_eq!(m.ask_concrete(&FactSet::new()), 0.3);
        assert!(m.willing());
        assert!(!m.profile().is_empty());
    }
}
