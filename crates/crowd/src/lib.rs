#![warn(missing_docs)]

//! # oassis-crowd
//!
//! The crowd model of Section 2 and the crowd-interaction machinery of
//! Sections 4 and 6:
//!
//! * [`Transaction`]s and [`PersonalDb`]s — each crowd member's *virtual*
//!   database of past occasions, with the personal support function
//!   `supp_u(A) = |{T ∈ D_u : A ≤ T}| / |D_u|`,
//! * the [`CrowdMember`] trait — the only way the engine may interact with a
//!   member is by asking *concrete* and *specialization* questions (plus the
//!   UI's user-guided pruning); the personal DB itself is never readable,
//! * simulated members: [`DbMember`] (backed by a personal DB, with the
//!   paper's five-level frequency scale and optional noise),
//!   [`ScriptedMember`] (fixed answers, for tests), [`SpammerMember`]
//!   (random answers, for quality-control experiments) and
//!   [`UnreliableMember`] (a seeded latency/drop channel model around any
//!   member, for the concurrent session runtime),
//! * the [`SharedCrowdCache`] — a lock-striped, thread-safe answer store the
//!   session runtime's workers share,
//! * the answer [`Aggregator`] black-box of Section 4.2 (default: the
//!   paper's five-answers-then-average rule),
//! * the [`CrowdCache`] — per-assignment answer storage enabling the
//!   threshold-replay methodology of Section 6.3,
//! * the [`AnswerStore`] — a cross-query answer log the multi-query service
//!   layer uses to serve repeated questions without re-asking the crowd,
//! * [`quality`] — the Section 4.2 consistency check (support monotonicity
//!   across a member's own answers) used to filter spammers.

pub mod aggregate;
pub mod answerstore;
pub mod cache;
pub mod frequency;
pub mod member;
pub mod placement;
pub mod profile;
pub mod quality;
pub mod shared;
pub mod transaction;
pub mod unreliable;

pub use aggregate::{
    Aggregator, Decision, FixedSampleAggregator, MajorityVoteAggregator, SequentialAggregator,
    SingleUserAggregator,
};
pub use answerstore::AnswerStore;
pub use cache::CrowdCache;
pub use frequency::FrequencyScale;
pub use member::{CrowdMember, DbMember, MemberId, ScriptedMember, SpammerMember};
pub use profile::{select_members, ProfiledMember};
pub use shared::{SharedCrowdCache, DEFAULT_STRIPES};
pub use transaction::{PersonalDb, SupportIndex, Transaction};
pub use unreliable::{ResponseModel, UnreliableMember};
