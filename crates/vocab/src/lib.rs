#![warn(missing_docs)]

//! # oassis-vocab
//!
//! The foundational data model of the OASSIS reproduction (SIGMOD 2014,
//! "OASSIS: Query Driven Crowd Mining", Section 2):
//!
//! * a [`Vocabulary`] `(E, ≤E, R, ≤R)` of *element* and *relation* names with
//!   semantic partial orders over each (Definition 2.1),
//! * [`Fact`]s — triples `⟨c1, r, c2⟩` — and [`FactSet`]s (Definition 2.2),
//! * the semantic partial order over facts and fact-sets induced by the
//!   vocabulary orders (Definition 2.5).
//!
//! The order convention throughout the workspace follows the paper: the more
//! *general* term is ≤ the more *specific* term, e.g. `Sport ≤E Biking`.
//! [`Taxonomy::leq(a, b)`](Taxonomy::leq) therefore answers "is `a` equal to
//! or an ancestor (generalization) of `b`?".
//!
//! Everything here is pure data-structure code with no I/O; it underpins the
//! triple store, the SPARQL evaluator, the crowd model and the mining engine.

pub mod bitset;
pub mod error;
pub mod fact;
pub mod ids;
pub mod interner;
pub mod taxonomy;
pub mod vocabulary;

pub use bitset::BitSet;
pub use error::VocabError;
pub use fact::{Fact, FactSet};
pub use ids::{ElementId, RelationId, TaxoId};
pub use interner::Interner;
pub use taxonomy::{Taxonomy, TaxonomyBuilder};
pub use vocabulary::{Vocabulary, VocabularyBuilder};
