//! String interning for element and relation names.

use std::collections::HashMap;

use crate::ids::TaxoId;

/// A bidirectional map between names and dense integer ids.
///
/// Names are unique; interning the same name twice returns the same id.
/// Lookup by id is `O(1)`, lookup by name is a hash probe.
#[derive(Debug, Clone)]
pub struct Interner<Id> {
    names: Vec<String>,
    by_name: HashMap<String, Id>,
}

impl<Id> Default for Interner<Id> {
    fn default() -> Self {
        Interner {
            names: Vec::new(),
            by_name: HashMap::new(),
        }
    }
}

impl<Id: TaxoId> Interner<Id> {
    /// Create an empty interner.
    pub fn new() -> Self {
        Interner {
            names: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Intern `name`, returning its id (existing or freshly allocated).
    pub fn intern(&mut self, name: &str) -> Id {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = Id::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Id> {
        self.by_name.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn name(&self, id: Id) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Id::from_index(i), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ElementId;

    #[test]
    fn interning_is_idempotent() {
        let mut i: Interner<ElementId> = Interner::new();
        let a = i.intern("Biking");
        let b = i.intern("Biking");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut i: Interner<ElementId> = Interner::new();
        let a = i.intern("Biking");
        let b = i.intern("Swimming");
        assert_ne!(a, b);
        assert_eq!(i.name(a), "Biking");
        assert_eq!(i.name(b), "Swimming");
    }

    #[test]
    fn get_finds_only_interned() {
        let mut i: Interner<ElementId> = Interner::new();
        assert!(i.get("Biking").is_none());
        let a = i.intern("Biking");
        assert_eq!(i.get("Biking"), Some(a));
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut i: Interner<ElementId> = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let names: Vec<_> = i.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }
}
