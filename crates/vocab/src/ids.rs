//! Compact integer identifiers for vocabulary terms.
//!
//! Elements and relations are interned once and referred to by 32-bit ids
//! everywhere else; this keeps facts at 12 bytes and makes the hot
//! partial-order checks cache-friendly.

use std::fmt;

/// Identifiers usable as taxonomy node handles.
///
/// Implemented by [`ElementId`] and [`RelationId`] so a single generic
/// [`Taxonomy`](crate::Taxonomy) implementation serves both the element order
/// `≤E` and the relation order `≤R`.
pub trait TaxoId: Copy + Eq + Ord + std::hash::Hash + fmt::Debug {
    /// Convert to a dense array index.
    fn index(self) -> usize;
    /// Construct from a dense array index.
    fn from_index(i: usize) -> Self;
}

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl TaxoId for $name {
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
            #[inline]
            fn from_index(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                $name(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0 as usize
            }
        }
    };
}

define_id!(
    /// Identifier of an element name in `E` (e.g. `Central Park`, `Biking`).
    ElementId,
    "e"
);
define_id!(
    /// Identifier of a relation name in `R` (e.g. `doAt`, `nearBy`).
    RelationId,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_element_id() {
        let id = ElementId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, ElementId(42));
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn roundtrip_relation_id() {
        let id = RelationId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "r7");
        assert_eq!(format!("{id:?}"), "r7");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(ElementId(1) < ElementId(2));
        assert!(RelationId(0) < RelationId(9));
    }
}
