//! Semantic partial orders over vocabulary terms (Definition 2.1).
//!
//! A [`Taxonomy`] stores the Hasse diagram of a partial order `≤` as a DAG
//! whose edges point from the more *general* term to the more *specific* one
//! (the paper's `Sport ≤E Biking` is an edge `Sport → Biking`). A transitive
//! closure (one descendant [`BitSet`] per node) is
//! precomputed so that order checks are `O(1)`.

use crate::bitset::BitSet;
use crate::error::VocabError;
use crate::ids::TaxoId;

/// Builder for a [`Taxonomy`]: collect Hasse edges, then [`build`](Self::build).
#[derive(Debug, Clone)]
pub struct TaxonomyBuilder<Id> {
    edges: Vec<(Id, Id)>,
}

impl<Id> Default for TaxonomyBuilder<Id> {
    fn default() -> Self {
        TaxonomyBuilder { edges: Vec::new() }
    }
}

impl<Id: TaxoId> TaxonomyBuilder<Id> {
    /// Create an empty builder.
    pub fn new() -> Self {
        TaxonomyBuilder { edges: Vec::new() }
    }

    /// Record that `specific` is an immediate specialization of `general`
    /// (`general ≤ specific`), e.g. `add_isa(Biking, Sport)` for
    /// "Biking subClassOf Sport".
    pub fn add_isa(&mut self, specific: Id, general: Id) -> &mut Self {
        self.edges.push((general, specific));
        self
    }

    /// Finalize into a [`Taxonomy`] over `n` terms (ids `0..n`).
    ///
    /// Terms not mentioned in any edge are incomparable roots/leaves.
    /// Returns [`VocabError::TaxonomyCycle`] if the edges contain a cycle and
    /// [`VocabError::IdOutOfRange`] if an edge mentions an id `>= n`.
    pub fn build(&self, n: usize) -> Result<Taxonomy<Id>, VocabError> {
        let mut parents: Vec<Vec<Id>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<Id>> = vec![Vec::new(); n];
        for &(general, specific) in &self.edges {
            if general.index() >= n || specific.index() >= n {
                return Err(VocabError::IdOutOfRange {
                    id: general.index().max(specific.index()),
                    len: n,
                });
            }
            if general == specific {
                return Err(VocabError::TaxonomyCycle);
            }
            if !children[general.index()].contains(&specific) {
                children[general.index()].push(specific);
                parents[specific.index()].push(general);
            }
        }
        for v in parents.iter_mut().chain(children.iter_mut()) {
            v.sort_unstable();
        }

        let topo = topo_order(&children, n)?;

        // Descendant closure in reverse topological order: each node's set is
        // itself plus the union of its children's sets.
        let mut descendants: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for &u in topo.iter().rev() {
            descendants[u].insert(u);
            // Move the set out to satisfy the borrow checker while unioning.
            let mut acc = std::mem::replace(&mut descendants[u], BitSet::new(0));
            for &c in &children[u] {
                acc.union_with(&descendants[c.index()]);
            }
            descendants[u] = acc;
        }

        // Depths and root fingerprints in one relaxation pass over the
        // topological order (parents are final before their children).
        let mut depths = vec![0usize; n];
        let mut root_bits = vec![0u64; n];
        for &u in &topo {
            if parents[u].is_empty() {
                root_bits[u] |= 1u64 << (u % 64);
            }
            for c in &children[u] {
                let ci = c.index();
                depths[ci] = depths[ci].max(depths[u] + 1);
                root_bits[ci] |= root_bits[u];
            }
        }
        let forest = parents.iter().all(|p| p.len() <= 1);

        Ok(Taxonomy {
            parents,
            children,
            descendants,
            topo,
            depths,
            root_bits,
            forest,
        })
    }
}

/// Kahn's algorithm; errors on a cycle. Edges go `u -> children[u]`.
fn topo_order<Id: TaxoId>(children: &[Vec<Id>], n: usize) -> Result<Vec<usize>, VocabError> {
    let mut indeg = vec![0usize; n];
    for cs in children {
        for c in cs {
            indeg[c.index()] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop() {
        order.push(u);
        for c in &children[u] {
            indeg[c.index()] -= 1;
            if indeg[c.index()] == 0 {
                queue.push(c.index());
            }
        }
    }
    if order.len() != n {
        return Err(VocabError::TaxonomyCycle);
    }
    Ok(order)
}

/// An immutable partial order over term ids with `O(1)` comparability checks.
#[derive(Debug, Clone)]
pub struct Taxonomy<Id> {
    parents: Vec<Vec<Id>>,
    children: Vec<Vec<Id>>,
    descendants: Vec<BitSet>,
    topo: Vec<usize>,
    depths: Vec<usize>,
    root_bits: Vec<u64>,
    forest: bool,
}

impl<Id: TaxoId> Taxonomy<Id> {
    /// A taxonomy over `n` pairwise-incomparable terms.
    pub fn discrete(n: usize) -> Self {
        TaxonomyBuilder::<Id>::new()
            .build(n)
            .expect("edge-free taxonomy cannot fail")
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Whether the taxonomy covers no terms.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// `a ≤ b`: is `a` equal to `b` or a (transitive) generalization of it?
    #[inline]
    pub fn leq(&self, a: Id, b: Id) -> bool {
        self.descendants[a.index()].contains(b.index())
    }

    /// `a < b`: strict generalization.
    #[inline]
    pub fn lt(&self, a: Id, b: Id) -> bool {
        a != b && self.leq(a, b)
    }

    /// Whether `a` and `b` are comparable under `≤`.
    pub fn comparable(&self, a: Id, b: Id) -> bool {
        self.leq(a, b) || self.leq(b, a)
    }

    /// Immediate generalizations of `id` (its parents in the Hasse diagram).
    pub fn parents(&self, id: Id) -> &[Id] {
        &self.parents[id.index()]
    }

    /// Immediate specializations of `id` (its children in the Hasse diagram).
    pub fn children(&self, id: Id) -> &[Id] {
        &self.children[id.index()]
    }

    /// All `b` with `id ≤ b` (including `id`), ascending by id.
    pub fn descendants(&self, id: Id) -> impl Iterator<Item = Id> + '_ {
        self.descendants[id.index()].iter().map(Id::from_index)
    }

    /// Number of descendants of `id`, including itself.
    pub fn descendant_count(&self, id: Id) -> usize {
        self.descendants[id.index()].len()
    }

    /// All `a` with `a ≤ id` (including `id`), computed by upward BFS.
    pub fn ancestors(&self, id: Id) -> Vec<Id> {
        let mut seen = BitSet::new(self.len());
        let mut stack = vec![id];
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            if seen.insert(u.index()) {
                out.push(u);
                stack.extend(self.parents(u).iter().copied());
            }
        }
        out.sort_unstable();
        out
    }

    /// Terms with no parents (the most general terms).
    pub fn roots(&self) -> impl Iterator<Item = Id> + '_ {
        (0..self.len())
            .filter(|&i| self.parents[i].is_empty())
            .map(Id::from_index)
    }

    /// Terms with no children (the most specific terms).
    pub fn leaves(&self) -> impl Iterator<Item = Id> + '_ {
        (0..self.len())
            .filter(|&i| self.children[i].is_empty())
            .map(Id::from_index)
    }

    /// A topological order (general before specific).
    pub fn topological(&self) -> impl Iterator<Item = Id> + '_ {
        self.topo.iter().map(|&i| Id::from_index(i))
    }

    /// Length of the longest root-to-`id` chain (roots have depth 0).
    #[inline]
    pub fn depth(&self, id: Id) -> usize {
        self.depths[id.index()]
    }

    /// Maximum depth over all terms (the taxonomy's height).
    pub fn height(&self) -> usize {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// A 64-bit fingerprint of the roots above `id` (each root folds its own
    /// index into one bit, so distinct roots may collide).
    ///
    /// Invariant used by the border prefilter: `a ≤ b` implies the set bits of
    /// `root_mask(a)` are a subset of `root_mask(b)`'s — every root above `a`
    /// is also above `b`, and OR-folding preserves that direction. Collisions
    /// can only make two masks *more* alike, i.e. lose pruning, never
    /// soundness.
    #[inline]
    pub fn root_mask(&self, id: Id) -> u64 {
        self.root_bits[id.index()]
    }

    /// Whether every term has at most one parent (the Hasse diagram is a
    /// forest). On forests, antichain canonicalization can never merge two
    /// values into a common descendant, which some weight-based prefilters
    /// rely on.
    #[inline]
    pub fn is_forest(&self) -> bool {
        self.forest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ElementId as E;

    /// Diamond: 0 -> {1, 2} -> 3, plus isolated 4.
    fn diamond() -> Taxonomy<E> {
        let mut b = TaxonomyBuilder::new();
        b.add_isa(E(1), E(0))
            .add_isa(E(2), E(0))
            .add_isa(E(3), E(1))
            .add_isa(E(3), E(2));
        b.build(5).unwrap()
    }

    #[test]
    fn leq_is_reflexive_and_transitive() {
        let t = diamond();
        for i in 0..5 {
            assert!(t.leq(E(i), E(i)), "reflexive at {i}");
        }
        assert!(t.leq(E(0), E(3)), "transitive 0 ≤ 3");
        assert!(t.leq(E(0), E(1)) && t.leq(E(1), E(3)));
    }

    #[test]
    fn incomparable_pairs() {
        let t = diamond();
        assert!(!t.leq(E(1), E(2)) && !t.leq(E(2), E(1)));
        assert!(!t.comparable(E(1), E(2)));
        assert!(!t.comparable(E(4), E(0)), "isolated node is incomparable");
        assert!(t.comparable(E(0), E(3)));
    }

    #[test]
    fn lt_excludes_equality() {
        let t = diamond();
        assert!(t.lt(E(0), E(3)));
        assert!(!t.lt(E(3), E(3)));
    }

    #[test]
    fn parents_and_children_are_immediate_only() {
        let t = diamond();
        assert_eq!(t.parents(E(3)), &[E(1), E(2)]);
        assert_eq!(t.children(E(0)), &[E(1), E(2)]);
        assert!(t.parents(E(0)).is_empty());
        assert!(t.children(E(3)).is_empty());
    }

    #[test]
    fn descendants_and_ancestors() {
        let t = diamond();
        let d: Vec<_> = t.descendants(E(0)).collect();
        assert_eq!(d, [E(0), E(1), E(2), E(3)]);
        assert_eq!(t.descendant_count(E(1)), 2);
        assert_eq!(t.ancestors(E(3)), vec![E(0), E(1), E(2), E(3)]);
        assert_eq!(t.ancestors(E(4)), vec![E(4)]);
    }

    #[test]
    fn roots_and_leaves() {
        let t = diamond();
        let roots: Vec<_> = t.roots().collect();
        assert_eq!(roots, [E(0), E(4)]);
        let leaves: Vec<_> = t.leaves().collect();
        assert_eq!(leaves, [E(3), E(4)]);
    }

    #[test]
    fn depth_and_height() {
        let t = diamond();
        assert_eq!(t.depth(E(0)), 0);
        assert_eq!(t.depth(E(3)), 2);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn root_mask_is_monotone_along_leq() {
        let t = diamond();
        for a in 0..5u32 {
            for b in 0..5u32 {
                if t.leq(E(a), E(b)) {
                    let (ma, mb) = (t.root_mask(E(a)), t.root_mask(E(b)));
                    assert_eq!(ma & !mb, 0, "mask({a}) ⊄ mask({b})");
                }
            }
        }
        // Isolated root 4 carries a different bit from root 0's family.
        assert_ne!(t.root_mask(E(4)), t.root_mask(E(0)));
    }

    #[test]
    fn forest_detection() {
        assert!(!diamond().is_forest(), "diamond has a two-parent node");
        let mut b = TaxonomyBuilder::new();
        b.add_isa(E(1), E(0)).add_isa(E(2), E(1));
        let chain = b.build(3).unwrap();
        assert!(chain.is_forest());
        assert_eq!(chain.depth(E(2)), 2);
        let discrete: Taxonomy<E> = Taxonomy::discrete(4);
        assert!(discrete.is_forest());
    }

    #[test]
    fn topological_respects_order() {
        let t = diamond();
        let pos: std::collections::HashMap<E, usize> =
            t.topological().enumerate().map(|(i, e)| (e, i)).collect();
        assert!(pos[&E(0)] < pos[&E(1)]);
        assert!(pos[&E(1)] < pos[&E(3)]);
        assert!(pos[&E(2)] < pos[&E(3)]);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = TaxonomyBuilder::new();
        b.add_isa(E(1), E(0)).add_isa(E(0), E(1));
        assert!(matches!(b.build(2), Err(VocabError::TaxonomyCycle)));
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = TaxonomyBuilder::new();
        b.add_isa(E(0), E(0));
        assert!(matches!(b.build(1), Err(VocabError::TaxonomyCycle)));
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let mut b = TaxonomyBuilder::new();
        b.add_isa(E(5), E(0));
        assert!(matches!(b.build(2), Err(VocabError::IdOutOfRange { .. })));
    }

    #[test]
    fn duplicate_edges_are_deduped() {
        let mut b = TaxonomyBuilder::new();
        b.add_isa(E(1), E(0)).add_isa(E(1), E(0));
        let t = b.build(2).unwrap();
        assert_eq!(t.children(E(0)), &[E(1)]);
    }

    #[test]
    fn discrete_taxonomy_has_no_order() {
        let t: Taxonomy<E> = Taxonomy::discrete(3);
        assert!(!t.leq(E(0), E(1)));
        assert!(t.leq(E(2), E(2)));
        assert_eq!(t.roots().count(), 3);
    }
}
