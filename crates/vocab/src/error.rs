//! Error type for vocabulary construction.

use std::fmt;

/// Errors raised while building vocabularies and taxonomies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VocabError {
    /// The declared is-a edges contain a cycle (a partial order must be a DAG).
    TaxonomyCycle,
    /// An edge referenced an id outside the declared term range.
    IdOutOfRange {
        /// The offending index.
        id: usize,
        /// The number of declared terms.
        len: usize,
    },
    /// A name was required to exist but was never interned.
    UnknownName(String),
}

impl fmt::Display for VocabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VocabError::TaxonomyCycle => {
                write!(
                    f,
                    "taxonomy edges contain a cycle; ≤ must be a partial order"
                )
            }
            VocabError::IdOutOfRange { id, len } => {
                write!(f, "term id {id} out of range for {len} declared terms")
            }
            VocabError::UnknownName(n) => write!(f, "unknown vocabulary name: {n:?}"),
        }
    }
}

impl std::error::Error for VocabError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(VocabError::TaxonomyCycle.to_string().contains("cycle"));
        assert!(VocabError::IdOutOfRange { id: 9, len: 3 }
            .to_string()
            .contains("9"));
        assert!(VocabError::UnknownName("Biking".into())
            .to_string()
            .contains("Biking"));
    }
}
