//! Facts and fact-sets (Definition 2.2).
//!
//! A [`Fact`] is a triple `⟨c1, r, c2⟩ ∈ E × R × E`; a [`FactSet`] is a set
//! of facts, kept sorted and deduplicated so that equality and hashing are
//! canonical. The semantic partial order over facts and fact-sets
//! (Definition 2.5) lives on [`Vocabulary`](crate::Vocabulary) because it
//! needs the term taxonomies.

use std::fmt;

use crate::ids::{ElementId, RelationId};

/// A triple `⟨subject, relation, object⟩`, e.g. `Biking doAt Central Park`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fact {
    /// The left element `c1`.
    pub subject: ElementId,
    /// The relation `r`.
    pub relation: RelationId,
    /// The right element `c2`.
    pub object: ElementId,
}

impl Fact {
    /// Construct a fact.
    pub fn new(subject: ElementId, relation: RelationId, object: ElementId) -> Self {
        Fact {
            subject,
            relation,
            object,
        }
    }
}

/// A canonical (sorted, deduplicated) set of [`Fact`]s.
///
/// ```
/// use oassis_vocab::{Fact, FactSet, ElementId, RelationId};
///
/// let f = Fact::new(ElementId(0), RelationId(0), ElementId(1));
/// let fs = FactSet::from_facts([f, f]);
/// assert_eq!(fs.len(), 1); // canonical: duplicates removed
/// assert!(fs.contains(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FactSet {
    facts: Vec<Fact>,
}

impl FactSet {
    /// The empty fact-set.
    pub fn new() -> Self {
        FactSet { facts: Vec::new() }
    }

    /// Build from any fact iterator; sorts and deduplicates.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> Self {
        let mut v: Vec<Fact> = facts.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        FactSet { facts: v }
    }

    /// Insert one fact, keeping the canonical order. Returns `true` if new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        match self.facts.binary_search(&fact) {
            Ok(_) => false,
            Err(pos) => {
                self.facts.insert(pos, fact);
                true
            }
        }
    }

    /// Whether `fact` is syntactically present (no semantic implication).
    pub fn contains(&self, fact: &Fact) -> bool {
        self.facts.binary_search(fact).is_ok()
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterate in canonical order.
    pub fn iter(&self) -> std::slice::Iter<'_, Fact> {
        self.facts.iter()
    }

    /// The facts as a sorted slice.
    pub fn as_slice(&self) -> &[Fact] {
        &self.facts
    }

    /// The union of two fact-sets.
    pub fn union(&self, other: &FactSet) -> FactSet {
        FactSet::from_facts(self.iter().chain(other.iter()).copied())
    }
}

impl FromIterator<Fact> for FactSet {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        FactSet::from_facts(iter)
    }
}

impl<'a> IntoIterator for &'a FactSet {
    type Item = &'a Fact;
    type IntoIter = std::slice::Iter<'a, Fact>;
    fn into_iter(self) -> Self::IntoIter {
        self.facts.iter()
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}, {}>", self.subject, self.relation, self.object)
    }
}

impl fmt::Display for FactSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.facts.iter().enumerate() {
            if i > 0 {
                write!(f, ". ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(s: u32, r: u32, o: u32) -> Fact {
        Fact::new(ElementId(s), RelationId(r), ElementId(o))
    }

    #[test]
    fn from_facts_sorts_and_dedups() {
        let fs = FactSet::from_facts([fact(2, 0, 0), fact(1, 0, 0), fact(2, 0, 0)]);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.as_slice(), &[fact(1, 0, 0), fact(2, 0, 0)]);
    }

    #[test]
    fn insert_maintains_canonical_order() {
        let mut fs = FactSet::new();
        assert!(fs.insert(fact(3, 0, 0)));
        assert!(fs.insert(fact(1, 0, 0)));
        assert!(!fs.insert(fact(3, 0, 0)), "duplicate insert is rejected");
        assert_eq!(fs.as_slice(), &[fact(1, 0, 0), fact(3, 0, 0)]);
    }

    #[test]
    fn equality_is_order_insensitive() {
        let a = FactSet::from_facts([fact(1, 0, 0), fact(2, 0, 0)]);
        let b = FactSet::from_facts([fact(2, 0, 0), fact(1, 0, 0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn union_merges() {
        let a = FactSet::from_facts([fact(1, 0, 0)]);
        let b = FactSet::from_facts([fact(2, 0, 0), fact(1, 0, 0)]);
        assert_eq!(a.union(&b).len(), 2);
    }

    #[test]
    fn contains_is_syntactic() {
        let fs = FactSet::from_facts([fact(1, 0, 0)]);
        assert!(fs.contains(&fact(1, 0, 0)));
        assert!(!fs.contains(&fact(1, 0, 1)));
    }

    #[test]
    fn display_is_readable() {
        let fs = FactSet::from_facts([fact(1, 2, 3)]);
        assert_eq!(fs.to_string(), "{<e1, r2, e3>}");
    }
}
