//! A small fixed-capacity bit set used for taxonomy transitive closures.
//!
//! The mining algorithms ask "is `a` a generalization of `b`?" millions of
//! times; storing each node's descendant set as a bit vector makes that a
//! single word probe. For the DAG sizes the paper reports (≈10k vocabulary
//! terms) a full closure costs ~12 MB, well within budget.

/// A fixed-size set of `usize` indices backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of addressable bits.
    bits: usize,
}

impl BitSet {
    /// Create a set that can hold indices `0..bits`, all initially absent.
    pub fn new(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
            bits,
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.bits
    }

    /// Insert index `i`. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i >= capacity()`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.bits, "bit index {i} out of range {}", self.bits);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Remove index `i`. Returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.bits, "bit index {i} out of range {}", self.bits);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Whether index `i` is present.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.bits {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Union `other` into `self`. Returns `true` if `self` changed.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.bits, other.bits, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Whether `self` and `other` share at least one index.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of indices present in both `self` and `other` (popcount of
    /// the intersection, without materializing it).
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        assert_eq!(self.bits, other.bits, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Keep only the indices also present in `other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.bits, other.bits, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Whether every index in `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn remove_clears_bits() {
        let mut s = BitSet::new(10);
        s.insert(3);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn union_merges_and_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(99);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(a.contains(1) && a.contains(99));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = BitSet::new(200);
        for i in [5usize, 63, 64, 65, 128, 199] {
            s.insert(i);
        }
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, [5, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn subset_and_intersects() {
        let mut a = BitSet::new(64);
        let mut b = BitSet::new(64);
        a.insert(1);
        b.insert(1);
        b.insert(2);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.intersects(&b));
        let empty = BitSet::new(64);
        assert!(empty.is_subset(&a));
        assert!(!empty.intersects(&a));
    }

    #[test]
    fn intersection_len_counts_shared_bits() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for i in [1usize, 63, 64, 130, 199] {
            a.insert(i);
        }
        for i in [63usize, 64, 131, 199] {
            b.insert(i);
        }
        assert_eq!(a.intersection_len(&b), 3);
        assert_eq!(b.intersection_len(&a), 3);
        assert_eq!(a.intersection_len(&BitSet::new(200)), 0);
    }

    #[test]
    fn intersect_with_keeps_only_shared_bits() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(70);
        b.insert(70);
        b.insert(99);
        a.intersect_with(&b);
        let v: Vec<_> = a.iter().collect();
        assert_eq!(v, [70]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(8).insert(8);
    }
}
