//! The vocabulary `V = (E, ≤E, R, ≤R)` (Definition 2.1) and the induced
//! semantic order over facts and fact-sets (Definition 2.5).

use crate::error::VocabError;
use crate::fact::{Fact, FactSet};
use crate::ids::{ElementId, RelationId};
use crate::interner::Interner;
use crate::taxonomy::{Taxonomy, TaxonomyBuilder};

/// Builder for a [`Vocabulary`].
///
/// Interleave term declarations and is-a edges freely; names are interned on
/// first use, so `element_isa("Biking", "Sport")` both declares the terms and
/// records `Sport ≤E Biking`.
#[derive(Debug, Clone, Default)]
pub struct VocabularyBuilder {
    elements: Interner<ElementId>,
    relations: Interner<RelationId>,
    elem_edges: TaxonomyBuilder<ElementId>,
    rel_edges: TaxonomyBuilder<RelationId>,
}

impl VocabularyBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare (or look up) an element name.
    pub fn element(&mut self, name: &str) -> ElementId {
        self.elements.intern(name)
    }

    /// Declare (or look up) a relation name.
    pub fn relation(&mut self, name: &str) -> RelationId {
        self.relations.intern(name)
    }

    /// Record `general ≤E specific`, e.g. `element_isa("Biking", "Sport")`.
    pub fn element_isa(&mut self, specific: &str, general: &str) -> &mut Self {
        let s = self.element(specific);
        let g = self.element(general);
        self.elem_edges.add_isa(s, g);
        self
    }

    /// Record `general ≤E specific` using pre-interned ids.
    pub fn element_isa_ids(&mut self, specific: ElementId, general: ElementId) -> &mut Self {
        self.elem_edges.add_isa(specific, general);
        self
    }

    /// Record `general ≤R specific`, e.g. `relation_isa("inside", "nearBy")`
    /// for the paper's `nearBy ≤R inside`.
    pub fn relation_isa(&mut self, specific: &str, general: &str) -> &mut Self {
        let s = self.relation(specific);
        let g = self.relation(general);
        self.rel_edges.add_isa(s, g);
        self
    }

    /// Record `general ≤R specific` using pre-interned ids.
    pub fn relation_isa_ids(&mut self, specific: RelationId, general: RelationId) -> &mut Self {
        self.rel_edges.add_isa(specific, general);
        self
    }

    /// Finalize. Fails if either declared order contains a cycle.
    pub fn build(self) -> Result<Vocabulary, VocabError> {
        let elem_tax = self.elem_edges.build(self.elements.len())?;
        let rel_tax = self.rel_edges.build(self.relations.len())?;
        Ok(Vocabulary {
            elements: self.elements,
            relations: self.relations,
            elem_tax,
            rel_tax,
        })
    }
}

/// A fixed vocabulary: interned element/relation names plus their taxonomies.
///
/// ```
/// use oassis_vocab::Vocabulary;
///
/// let mut b = Vocabulary::builder();
/// b.element_isa("Biking", "Sport").element_isa("Sport", "Activity");
/// let v = b.build().unwrap();
/// let (activity, biking) = (v.element("Activity").unwrap(), v.element("Biking").unwrap());
/// assert!(v.elem_leq(activity, biking)); // Activity ≤E Biking (general ≤ specific)
/// assert!(!v.elem_leq(biking, activity));
/// ```
#[derive(Debug, Clone)]
pub struct Vocabulary {
    elements: Interner<ElementId>,
    relations: Interner<RelationId>,
    elem_tax: Taxonomy<ElementId>,
    rel_tax: Taxonomy<RelationId>,
}

impl Vocabulary {
    /// Start building a vocabulary.
    pub fn builder() -> VocabularyBuilder {
        VocabularyBuilder::new()
    }

    /// Look up an element by name.
    pub fn element(&self, name: &str) -> Option<ElementId> {
        self.elements.get(name)
    }

    /// Look up an element by name, erroring with the name on failure.
    pub fn element_or_err(&self, name: &str) -> Result<ElementId, VocabError> {
        self.element(name)
            .ok_or_else(|| VocabError::UnknownName(name.to_owned()))
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Option<RelationId> {
        self.relations.get(name)
    }

    /// Look up a relation by name, erroring with the name on failure.
    pub fn relation_or_err(&self, name: &str) -> Result<RelationId, VocabError> {
        self.relation(name)
            .ok_or_else(|| VocabError::UnknownName(name.to_owned()))
    }

    /// The name of an element id.
    pub fn element_name(&self, id: ElementId) -> &str {
        self.elements.name(id)
    }

    /// The name of a relation id.
    pub fn relation_name(&self, id: RelationId) -> &str {
        self.relations.name(id)
    }

    /// Number of element names `|E|`.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Number of relation names `|R|`.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The element order `≤E`.
    pub fn elements_order(&self) -> &Taxonomy<ElementId> {
        &self.elem_tax
    }

    /// The relation order `≤R`.
    pub fn relations_order(&self) -> &Taxonomy<RelationId> {
        &self.rel_tax
    }

    /// Iterate all element ids with their names.
    pub fn elements(&self) -> impl Iterator<Item = (ElementId, &str)> + '_ {
        self.elements.iter()
    }

    /// Iterate all relation ids with their names.
    pub fn relations(&self) -> impl Iterator<Item = (RelationId, &str)> + '_ {
        self.relations.iter()
    }

    /// `a ≤E b`.
    #[inline]
    pub fn elem_leq(&self, a: ElementId, b: ElementId) -> bool {
        self.elem_tax.leq(a, b)
    }

    /// `a ≤R b`.
    #[inline]
    pub fn rel_leq(&self, a: RelationId, b: RelationId) -> bool {
        self.rel_tax.leq(a, b)
    }

    /// Fact order (Definition 2.5): `f ≤ f'` iff each component is ≤.
    #[inline]
    pub fn fact_leq(&self, f: &Fact, g: &Fact) -> bool {
        self.elem_leq(f.subject, g.subject)
            && self.rel_leq(f.relation, g.relation)
            && self.elem_leq(f.object, g.object)
    }

    /// Fact-set order (Definition 2.5): `A ≤ B` iff every fact of `A` is
    /// implied by (≤) some fact of `B`.
    pub fn factset_leq(&self, a: &FactSet, b: &FactSet) -> bool {
        a.iter().all(|fa| b.iter().any(|fb| self.fact_leq(fa, fb)))
    }

    /// Whether fact `f` is implied by fact-set `b` (`{f} ≤ b`).
    pub fn fact_implied(&self, f: &Fact, b: &FactSet) -> bool {
        b.iter().any(|fb| self.fact_leq(f, fb))
    }

    /// Render a fact with names, in the paper's RDF-ish notation.
    pub fn fact_to_string(&self, f: &Fact) -> String {
        format!(
            "{} {} {}",
            self.element_name(f.subject),
            self.relation_name(f.relation),
            self.element_name(f.object)
        )
    }

    /// Render a fact-set with names, facts separated by `. ` as in Table 3.
    pub fn factset_to_string(&self, fs: &FactSet) -> String {
        fs.iter()
            .map(|f| self.fact_to_string(f))
            .collect::<Vec<_>>()
            .join(". ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fragment of the paper's Figure 1 used by its running examples.
    fn sample() -> Vocabulary {
        let mut b = Vocabulary::builder();
        b.element_isa("Sport", "Activity")
            .element_isa("Biking", "Sport")
            .element_isa("Ball Game", "Sport")
            .element_isa("Basketball", "Ball Game")
            .element_isa("Baseball", "Ball Game")
            .element_isa("Park", "Outdoor")
            .element_isa("Central Park", "Park")
            .relation_isa("inside", "nearBy");
        b.element("NYC");
        b.relation("doAt");
        b.build().unwrap()
    }

    #[test]
    fn example_2_6_fact_order() {
        // f1 = <Sport, doAt, Central Park>, f2 = <Biking, doAt, Central Park>:
        // f1 ≤ f2 since Sport ≤E Biking.
        let v = sample();
        let do_at = v.relation("doAt").unwrap();
        let f1 = Fact::new(
            v.element("Sport").unwrap(),
            do_at,
            v.element("Central Park").unwrap(),
        );
        let f2 = Fact::new(
            v.element("Biking").unwrap(),
            do_at,
            v.element("Central Park").unwrap(),
        );
        assert!(v.fact_leq(&f1, &f2));
        assert!(!v.fact_leq(&f2, &f1));
        assert!(v.fact_leq(&f1, &f1), "fact order is reflexive");
    }

    #[test]
    fn example_2_6_relation_order() {
        // f3 = <Central Park, inside, NYC>, f4 = <Central Park, nearBy, NYC>:
        // nearBy ≤R inside, so f4 ≤ f3.
        let v = sample();
        let cp = v.element("Central Park").unwrap();
        let nyc = v.element("NYC").unwrap();
        let f3 = Fact::new(cp, v.relation("inside").unwrap(), nyc);
        let f4 = Fact::new(cp, v.relation("nearBy").unwrap(), nyc);
        assert!(v.fact_leq(&f4, &f3));
        assert!(!v.fact_leq(&f3, &f4));
    }

    #[test]
    fn factset_order_requires_witness_per_fact() {
        let v = sample();
        let do_at = v.relation("doAt").unwrap();
        let cp = v.element("Central Park").unwrap();
        let sport = Fact::new(v.element("Sport").unwrap(), do_at, cp);
        let biking = Fact::new(v.element("Biking").unwrap(), do_at, cp);
        let baseball = Fact::new(v.element("Baseball").unwrap(), do_at, cp);

        let general = FactSet::from_facts([sport]);
        let specific = FactSet::from_facts([biking, baseball]);
        assert!(v.factset_leq(&general, &specific));
        assert!(!v.factset_leq(&specific, &general));
        assert!(
            v.factset_leq(&FactSet::new(), &general),
            "empty set is ≤ everything"
        );
    }

    #[test]
    fn fact_implied_matches_factset_leq_singleton() {
        let v = sample();
        let do_at = v.relation("doAt").unwrap();
        let cp = v.element("Central Park").unwrap();
        let sport = Fact::new(v.element("Sport").unwrap(), do_at, cp);
        let biking = Fact::new(v.element("Biking").unwrap(), do_at, cp);
        let t = FactSet::from_facts([biking]);
        assert!(v.fact_implied(&sport, &t));
        assert_eq!(
            v.fact_implied(&sport, &t),
            v.factset_leq(&FactSet::from_facts([sport]), &t)
        );
    }

    #[test]
    fn unknown_names_error() {
        let v = sample();
        assert!(v.element("Skiing").is_none());
        assert!(matches!(
            v.element_or_err("Skiing"),
            Err(VocabError::UnknownName(_))
        ));
        assert!(matches!(
            v.relation_or_err("eats"),
            Err(VocabError::UnknownName(_))
        ));
    }

    #[test]
    fn rendering_uses_names() {
        let v = sample();
        let f = Fact::new(
            v.element("Biking").unwrap(),
            v.relation("doAt").unwrap(),
            v.element("Central Park").unwrap(),
        );
        assert_eq!(v.fact_to_string(&f), "Biking doAt Central Park");
        let fs = FactSet::from_facts([f]);
        assert_eq!(v.factset_to_string(&fs), "Biking doAt Central Park");
    }

    #[test]
    fn counts_reflect_interned_terms() {
        let v = sample();
        assert_eq!(v.num_relations(), 3); // inside, nearBy, doAt
        assert!(v.num_elements() >= 9);
    }
}
