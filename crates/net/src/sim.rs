//! [`SimNet`] / [`SimTransport`] — a deterministic in-memory network for
//! protocol-level fault injection.
//!
//! The net owns every connection's two message queues and a seeded RNG;
//! nothing touches wall-clock time or OS sockets, so a harness that
//! steps clients, [`tick`](SimNet::tick)s the net, and drains the server
//! side in a fixed order replays bit-identically from one `u64` seed.
//!
//! Faults are applied per enqueued line, in both directions:
//!
//! * **drop** — the line vanishes (the sender never knows);
//! * **duplicate** — the line is delivered twice;
//! * **delay** — delivery is deferred a seeded number of ticks;
//! * **sever** — the connection dies mid-flight: queued lines are lost
//!   and both ends see `Closed` until the client reconnects.
//!
//! [`kill_server`](SimNet::kill_server) models a process crash: every
//! connection is severed at once and new connections are refused until
//! [`restart_server`](SimNet::restart_server). The protocol crash oracle
//! kills the server *immediately after* it processed a request frame —
//! state mutated, response discarded — which is the hardest point: the
//! client cannot distinguish "request lost" from "response lost", and
//! only the protocol's idempotency handles keep the retry from doubling
//! the effect.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use crate::transport::{NetError, Transport};

/// Per-line fault probabilities (out of 1000) and delay bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// ‰ chance a line is dropped.
    pub drop_per_mille: u16,
    /// ‰ chance a line is delivered twice.
    pub dup_per_mille: u16,
    /// Maximum delivery delay in ticks (each line draws uniformly from
    /// `0..=delay_max_ticks`).
    pub delay_max_ticks: u64,
    /// ‰ chance the connection is severed instead of delivering.
    pub sever_per_mille: u16,
}

impl FaultConfig {
    /// A modest mixed-fault profile for sweeps: occasional drops and
    /// duplicates, small delays, rare severs.
    pub fn light() -> Self {
        FaultConfig {
            drop_per_mille: 60,
            dup_per_mille: 60,
            delay_max_ticks: 3,
            sever_per_mille: 8,
        }
    }
}

struct SimConn {
    alive: bool,
    /// `(deliver_at_tick, line)`, in enqueue order.
    to_server: VecDeque<(u64, String)>,
    to_client: VecDeque<(u64, String)>,
}

struct SimNetInner {
    rng: u64,
    faults: FaultConfig,
    tick: u64,
    next_conn: u64,
    server_alive: bool,
    /// `BTreeMap` so server-side draining visits connections in a
    /// deterministic order.
    conns: BTreeMap<u64, SimConn>,
}

impl SimNetInner {
    /// xorshift64*: tiny, seeded, plenty for fault dice.
    fn roll(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn chance(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.roll() % 1000 < per_mille as u64
    }

    fn enqueue(&mut self, conn: u64, line: &str, to_server: bool) -> Result<(), NetError> {
        if self.chance(self.faults.sever_per_mille) {
            if let Some(c) = self.conns.get_mut(&conn) {
                c.alive = false;
                c.to_server.clear();
                c.to_client.clear();
            }
            return Err(NetError::Closed("connection severed by fault".into()));
        }
        if self.chance(self.faults.drop_per_mille) {
            return Ok(()); // lost in flight; the sender cannot tell
        }
        let copies = if self.chance(self.faults.dup_per_mille) {
            2
        } else {
            1
        };
        for _ in 0..copies {
            let delay = if self.faults.delay_max_ticks > 0 {
                self.roll() % (self.faults.delay_max_ticks + 1)
            } else {
                0
            };
            let at = self.tick + delay;
            let Some(c) = self.conns.get_mut(&conn) else {
                return Err(NetError::Closed("unknown connection".into()));
            };
            if to_server {
                c.to_server.push_back((at, line.to_owned()));
            } else {
                c.to_client.push_back((at, line.to_owned()));
            }
        }
        Ok(())
    }

    /// Pop the first due line from `queue` (delivery respects enqueue
    /// order per connection; a delayed line blocks those behind it, like
    /// a TCP stream would).
    fn pop_due(queue: &mut VecDeque<(u64, String)>, tick: u64) -> Option<String> {
        match queue.front() {
            Some((at, _)) if *at <= tick => queue.pop_front().map(|(_, l)| l),
            _ => None,
        }
    }
}

/// The shared in-memory network. Cheap to clone; all clones address the
/// same queues.
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<Mutex<SimNetInner>>,
}

impl SimNet {
    /// A fault-free deterministic net seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SimNet {
            inner: Arc::new(Mutex::new(SimNetInner {
                // splitmix64-style scramble so adjacent seeds diverge,
                // then force odd (zero is xorshift's fixed point).
                rng: {
                    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    (z ^ (z >> 31)) | 1
                },
                faults: FaultConfig::default(),
                tick: 0,
                next_conn: 0,
                server_alive: true,
                conns: BTreeMap::new(),
            })),
        }
    }

    /// Enable fault injection.
    pub fn with_faults(self, faults: FaultConfig) -> Self {
        self.inner.lock().expect("simnet").faults = faults;
        self
    }

    /// Advance virtual time one tick (releases delayed deliveries).
    pub fn tick(&self) {
        self.inner.lock().expect("simnet").tick += 1;
    }

    /// Open a client connection. Fails while the server is down.
    pub fn connect(&self) -> Result<SimTransport, NetError> {
        let mut inner = self.inner.lock().expect("simnet");
        if !inner.server_alive {
            return Err(NetError::Closed("server is down".into()));
        }
        let conn = inner.next_conn;
        inner.next_conn += 1;
        inner.conns.insert(
            conn,
            SimConn {
                alive: true,
                to_server: VecDeque::new(),
                to_client: VecDeque::new(),
            },
        );
        Ok(SimTransport {
            net: self.clone(),
            conn,
        })
    }

    /// Server side: the next due request line, as `(conn, line)`, in
    /// deterministic connection order. `None` when nothing is due.
    pub fn server_recv(&self) -> Option<(u64, String)> {
        let mut inner = self.inner.lock().expect("simnet");
        if !inner.server_alive {
            return None;
        }
        let tick = inner.tick;
        let due: Option<u64> = inner
            .conns
            .iter()
            .find(|(_, c)| {
                c.alive && c.to_server.front().is_some_and(|(at, _)| *at <= tick)
            })
            .map(|(id, _)| *id);
        let conn = due?;
        let line = SimNetInner::pop_due(&mut inner.conns.get_mut(&conn).expect("found").to_server, tick)
            .expect("front was due");
        Some((conn, line))
    }

    /// Server side: send a response line to `conn` (faults apply).
    pub fn server_send(&self, conn: u64, line: &str) {
        let mut inner = self.inner.lock().expect("simnet");
        if !inner.server_alive {
            return;
        }
        let alive = inner.conns.get(&conn).is_some_and(|c| c.alive);
        if alive {
            // A sever rolled here already marked the connection dead;
            // the client discovers it on its next send/recv.
            let _ = inner.enqueue(conn, line, false);
        }
    }

    /// Crash the server: every connection is severed (in-flight lines in
    /// both directions are lost) and new connections are refused until
    /// [`restart_server`](Self::restart_server).
    pub fn kill_server(&self) {
        let mut inner = self.inner.lock().expect("simnet");
        inner.server_alive = false;
        for c in inner.conns.values_mut() {
            c.alive = false;
            c.to_server.clear();
            c.to_client.clear();
        }
    }

    /// Bring a (recovered) server back; clients may reconnect.
    pub fn restart_server(&self) {
        self.inner.lock().expect("simnet").server_alive = true;
    }

    /// Whether the server is accepting connections.
    pub fn server_alive(&self) -> bool {
        self.inner.lock().expect("simnet").server_alive
    }
}

/// One client endpoint of a [`SimNet`] connection.
pub struct SimTransport {
    net: SimNet,
    conn: u64,
}

impl SimTransport {
    /// The current connection id (changes on reconnect).
    pub fn conn_id(&self) -> u64 {
        self.conn
    }
}

impl Transport for SimTransport {
    fn send(&mut self, line: &str) -> Result<(), NetError> {
        let mut inner = self.net.inner.lock().expect("simnet");
        let alive = inner.conns.get(&self.conn).is_some_and(|c| c.alive);
        if !alive {
            return Err(NetError::Closed("connection is dead".into()));
        }
        if !inner.server_alive {
            // The TCP analogue: the send "succeeds" locally but the peer
            // is gone; the line is lost and the client times out.
            return Ok(());
        }
        inner.enqueue(self.conn, line, true)
    }

    fn try_recv(&mut self) -> Result<Option<String>, NetError> {
        let mut inner = self.net.inner.lock().expect("simnet");
        let tick = inner.tick;
        let Some(c) = inner.conns.get_mut(&self.conn) else {
            return Err(NetError::Closed("unknown connection".into()));
        };
        if !c.alive {
            return Err(NetError::Closed("connection is dead".into()));
        }
        Ok(SimNetInner::pop_due(&mut c.to_client, tick))
    }

    fn reconnect(&mut self) -> Result<(), NetError> {
        let fresh = self.net.connect()?;
        self.conn = fresh.conn;
        Ok(())
    }

    fn close(&mut self) {
        let mut inner = self.net.inner.lock().expect("simnet");
        if let Some(c) = inner.conns.get_mut(&self.conn) {
            c.alive = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_net_delivers_in_order() {
        let net = SimNet::new(7);
        let mut t = net.connect().expect("server is up");
        t.send("a").unwrap();
        t.send("b").unwrap();
        let (conn, first) = net.server_recv().expect("due");
        assert_eq!((conn, first.as_str()), (t.conn_id(), "a"));
        net.server_send(conn, "ack-a");
        assert_eq!(net.server_recv().map(|(_, l)| l).as_deref(), Some("b"));
        assert_eq!(t.try_recv().unwrap().as_deref(), Some("ack-a"));
        assert_eq!(t.try_recv().unwrap(), None);
    }

    #[test]
    fn kill_severs_and_restart_allows_reconnect() {
        let net = SimNet::new(7);
        let mut t = net.connect().expect("up");
        t.send("x").unwrap();
        net.kill_server();
        assert!(net.server_recv().is_none(), "in-flight lines are lost");
        assert!(matches!(t.try_recv(), Err(NetError::Closed(_))));
        assert!(matches!(t.reconnect(), Err(NetError::Closed(_))));
        net.restart_server();
        t.reconnect().expect("reconnects after restart");
        t.send("y").unwrap();
        assert_eq!(net.server_recv().map(|(_, l)| l).as_deref(), Some("y"));
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let run = |seed: u64| -> Vec<Option<String>> {
            let net = SimNet::new(seed).with_faults(FaultConfig {
                drop_per_mille: 300,
                dup_per_mille: 300,
                delay_max_ticks: 2,
                sever_per_mille: 0,
            });
            let mut t = net.connect().expect("up");
            let mut seen = Vec::new();
            for i in 0..32 {
                let _ = t.send(&format!("m{i}"));
                net.tick();
                seen.push(net.server_recv().map(|(_, l)| l));
                seen.push(net.server_recv().map(|(_, l)| l));
            }
            seen
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds explore different schedules");
    }
}
