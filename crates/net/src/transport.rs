//! The client-side transport abstraction: a bidirectional, line-oriented,
//! *unreliable* channel. Everything above it ([`NetClient`]) assumes
//! lines can be lost, duplicated, delayed or reordered, and that the
//! connection can die at any moment — the [`TcpTransport`] only loses
//! lines when the connection dies, while the deterministic
//! [`SimTransport`] injects every fault on purpose.
//!
//! [`NetClient`]: crate::NetClient
//! [`TcpTransport`]: crate::TcpTransport
//! [`SimTransport`]: crate::SimTransport

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The connection is gone (severed, or the peer died). Call
    /// [`Transport::reconnect`] and replay the conversation state.
    Closed(String),
    /// The peer violated the protocol (bad frame, bad sequence).
    Protocol(String),
    /// Transport-level I/O failed in a way reconnecting won't fix.
    Io(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Closed(d) => write!(f, "connection closed: {d}"),
            NetError::Protocol(d) => write!(f, "protocol error: {d}"),
            NetError::Io(d) => write!(f, "i/o error: {d}"),
        }
    }
}

impl std::error::Error for NetError {}

/// One client connection to an OASSIS server. Implementations must be
/// non-blocking: [`try_recv`](Self::try_recv) returns `Ok(None)` when no
/// line has arrived yet, and the caller drives progress by polling.
pub trait Transport {
    /// Send one frame line (no trailing newline). The line may still be
    /// lost in flight — delivery is confirmed only by a response.
    fn send(&mut self, line: &str) -> Result<(), NetError>;

    /// Receive the next available frame line, if any.
    fn try_recv(&mut self) -> Result<Option<String>, NetError>;

    /// Tear down the current connection (if any) and establish a fresh
    /// one to the same server. Connection-scoped protocol state (sequence
    /// numbers, the server's response cache) starts over.
    fn reconnect(&mut self) -> Result<(), NetError>;

    /// Close the connection.
    fn close(&mut self);
}
