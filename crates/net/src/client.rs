//! [`NetClient`] — the request/response state machine over any
//! [`Transport`].
//!
//! One request is in flight at a time. The client stamps each request
//! with a connection-scoped sequence number, collects the response batch
//! (frames tagged with that sequence number, deduplicated by frame
//! index), and retransmits the request if the batch does not complete
//! within a polling-step budget — the server's per-connection response
//! cache makes retransmission safe. The machine is *step-driven* so a
//! deterministic harness can interleave it with the simulated network
//! and server; [`call`](NetClient::call) wraps the steps into a blocking
//! convenience for real TCP use.

use std::collections::BTreeMap;

use crate::frame::{decode_request, decode_response, encode_request, Request, Response};
use crate::transport::{NetError, Transport};

/// Steps without a completed batch before the request is retransmitted.
/// Deliberately small: a step is one poll of the transport, and on the
/// simulated transport a dropped frame should be retried within a few
/// ticks, not wall-clock seconds.
pub const RETRY_AFTER_STEPS: u32 = 24;

/// Retransmissions before the connection is declared dead. Covers frames
/// lost to injected drops; a severed connection fails fast on `send`.
pub const MAX_RETRIES: u32 = 40;

struct Pending {
    seq: u64,
    line: String,
    /// Response frames received so far, keyed by frame index.
    frames: BTreeMap<u64, Response>,
    steps_since_send: u32,
    retries: u32,
}

/// A protocol client over one [`Transport`] connection.
pub struct NetClient<T: Transport> {
    transport: T,
    next_seq: u64,
    pending: Option<Pending>,
}

impl<T: Transport> NetClient<T> {
    /// Wrap an established transport.
    pub fn new(transport: T) -> Self {
        NetClient {
            transport,
            next_seq: 1,
            pending: None,
        }
    }

    /// The underlying transport (e.g. to inspect a simulated endpoint).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Whether a request is awaiting its response batch.
    pub fn is_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Send `req` and start collecting its response batch. Errors if a
    /// request is already pending ([`step`](Self::step) until it
    /// completes) or the connection is down (reconnect and retry).
    pub fn request(&mut self, req: &Request) -> Result<(), NetError> {
        if self.pending.is_some() {
            return Err(NetError::Protocol(
                "a request is already in flight".into(),
            ));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let line = encode_request(seq, req);
        self.transport.send(&line)?;
        self.pending = Some(Pending {
            seq,
            line,
            frames: BTreeMap::new(),
            steps_since_send: 0,
            retries: 0,
        });
        Ok(())
    }

    /// Drive the pending request one step: drain arrived frames, check
    /// batch completion, retransmit on timeout. Returns the completed
    /// batch (frames in index order, terminal frame last), or `None`
    /// while still waiting. A `Closed` error means the connection died —
    /// [`reconnect`](Self::reconnect) and re-issue the conversation.
    pub fn step(&mut self) -> Result<Option<Vec<Response>>, NetError> {
        let Some(pending) = self.pending.as_mut() else {
            // Nothing in flight; drain stray deliveries (late duplicates).
            while self.transport.try_recv()?.is_some() {}
            return Ok(None);
        };
        // Drain everything that arrived, remembering (not propagating) a
        // transport death: a server that answers and then closes the
        // connection (`Bye`) delivers the completing frame and EOF in the
        // same step, and the completed batch must win over the error.
        let died = loop {
            match self.transport.try_recv() {
                Ok(Some(line)) => {
                    let Ok((reqseq, idx, resp)) = decode_response(&line) else {
                        // A corrupted frame is indistinguishable from a
                        // lost one: ignore it, retransmission recovers.
                        continue;
                    };
                    if reqseq != pending.seq {
                        continue; // stale frame from a superseded request
                    }
                    pending.frames.entry(idx).or_insert(resp);
                }
                Ok(None) => break None,
                Err(e) => break Some(e),
            }
        };
        // Complete when a terminal frame arrived and every index below it
        // did too (the terminal frame is always the batch's last index).
        let done = pending.frames.iter().next_back().is_some_and(|(last, resp)| {
            resp.is_terminal() && pending.frames.len() as u64 == last + 1
        });
        if done {
            let pending = self.pending.take().expect("checked above");
            return Ok(Some(pending.frames.into_values().collect()));
        }
        if let Some(e) = died {
            return Err(e);
        }
        pending.steps_since_send += 1;
        if pending.steps_since_send >= RETRY_AFTER_STEPS {
            if pending.retries >= MAX_RETRIES {
                self.pending = None;
                return Err(NetError::Closed(
                    "request retransmission budget exhausted".into(),
                ));
            }
            pending.retries += 1;
            pending.steps_since_send = 0;
            self.transport.send(&pending.line)?;
        }
        Ok(None)
    }

    /// Re-establish the connection after a `Closed` error. Any pending
    /// request is abandoned and the sequence space restarts (the new
    /// connection has fresh server-side state); the caller re-runs its
    /// conversation (`Hello`, then `Resume`/`Submit`-by-token).
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        self.pending = None;
        self.transport.reconnect()?;
        self.next_seq = 1;
        Ok(())
    }

    /// Blocking convenience for real transports: [`request`] then
    /// [`step`] until the batch completes, sleeping briefly between
    /// polls. Simulation harnesses drive `step` themselves instead.
    ///
    /// [`request`]: Self::request
    /// [`step`]: Self::step
    pub fn call(&mut self, req: &Request) -> Result<Vec<Response>, NetError> {
        self.request(req)?;
        loop {
            if let Some(batch) = self.step()? {
                return Ok(batch);
            }
            std::thread::sleep(std::time::Duration::from_micros(300));
        }
    }

    /// Close the connection.
    pub fn close(&mut self) {
        self.transport.close();
    }
}

/// Sanity helper for tests and the simulated server loop: whether `line`
/// parses as a request frame at all.
pub fn is_request_line(line: &str) -> bool {
    decode_request(line).is_ok()
}
