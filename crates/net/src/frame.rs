//! The wire frame codec: one line per frame, versioned and checksummed
//! exactly like the WAL.
//!
//! Request frames (client → server):
//!
//! ```text
//! v1|seq|kind|fields...|checksum
//! ```
//!
//! Response frames (server → client) carry the request's `seq` plus a
//! frame index within the response batch, so a client can reassemble a
//! multi-frame answer (zero or more streamed `Answer`s followed by one
//! terminal frame) and discard duplicates:
//!
//! ```text
//! v1|reqseq|idx|kind|fields...|checksum
//! ```
//!
//! `checksum` is the FNV-1a-64 hex digest of everything before the final
//! separator ([`fnv1a64`] — the same function the WAL uses), free-text
//! fields are percent-escaped with the WAL's [`escape_field`] discipline,
//! and MSP lists use the WAL's [`encode_list`] codec. A frame is either
//! valid in full or rejected; a truncated or corrupted line is never
//! half-parsed.

use oassis_store_durable::{
    decode_list, encode_list, escape_field, fnv1a64, unescape_field, AdmitSpec,
    ADMIT_SPEC_FIELDS,
};

/// Protocol version spoken by this build. `Hello`/`Welcome` negotiate it;
/// a mismatch is a hard error (there is exactly one version so far).
pub const PROTOCOL_VERSION: u32 = 1;

const SEP: char = '|';
const VERSION_TAG: &str = "v1";

/// Why a frame failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(pub String);

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad frame: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open the conversation; `version` must match [`PROTOCOL_VERSION`].
    Hello {
        /// The client's protocol version.
        version: u32,
    },
    /// Admit a session. `spec.token` must be set: the server dedupes
    /// retransmitted `Submit`s (same connection, a reconnect, or a
    /// restart after a crash) by it, so a retry can never admit twice.
    Submit {
        /// The session spec in its durable/wire shape.
        spec: AdmitSpec,
    },
    /// Ask for a session's progress: the response streams the MSPs
    /// confirmed since the last poll, then reports status and counters.
    Poll {
        /// The session to poll.
        session: u64,
    },
    /// Re-attach to a session after a server restart (idempotent: a live
    /// or already-resumed id resolves to its current incarnation).
    Resume {
        /// The original session id.
        session: u64,
    },
    /// Request cancellation; takes effect at the session's next
    /// scheduling slot.
    Cancel {
        /// The session to cancel.
        session: u64,
    },
    /// End the conversation.
    Close,
}

/// A session's status on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireStatus {
    /// Still mining.
    Running,
    /// Mined to completion.
    Completed,
    /// Cancelled; the result is partial.
    Cancelled,
    /// Crowd-question budget ran out; the result is partial.
    BudgetExhausted,
}

impl WireStatus {
    /// Whether this status ends the session.
    pub fn is_terminal(self) -> bool {
        !matches!(self, WireStatus::Running)
    }

    fn code(self) -> &'static str {
        match self {
            WireStatus::Running => "R",
            WireStatus::Completed => "C",
            WireStatus::Cancelled => "X",
            WireStatus::BudgetExhausted => "B",
        }
    }

    fn from_code(code: &str) -> Result<Self, String> {
        match code {
            "R" => Ok(WireStatus::Running),
            "C" => Ok(WireStatus::Completed),
            "X" => Ok(WireStatus::Cancelled),
            "B" => Ok(WireStatus::BudgetExhausted),
            other => Err(format!("unknown status {other:?}")),
        }
    }
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to `Hello`.
    Welcome {
        /// The server's protocol version.
        version: u32,
        /// Crowd seats behind the service.
        crowd: u64,
    },
    /// Answer to `Submit`: the admitted (or deduplicated) session id.
    Admitted {
        /// The session id to poll.
        session: u64,
    },
    /// Answer to `Resume`: the original id and its current incarnation
    /// (equal when the session needs no re-admission).
    Resumed {
        /// The id the client asked to resume.
        original: u64,
        /// The session id to poll from now on.
        session: u64,
    },
    /// One streamed partial result — an MSP confirmed since the last
    /// poll. Zero or more of these precede the terminal frame of a
    /// `Poll` response. The stream is best-effort (frames lost to a
    /// crash or reconnect are not replayed); the terminal `Update`'s
    /// MSP list is authoritative.
    Answer {
        /// The session that confirmed the MSP.
        session: u64,
        /// Rendered MSP (per the query's SELECT form).
        rendered: String,
        /// Aggregated support estimate, if collected.
        support: Option<f64>,
        /// Whether the MSP is valid w.r.t. the query.
        valid: bool,
    },
    /// Status + counters; terminal frame of `Poll` and `Cancel`
    /// responses. `msps` is the complete sorted valid-MSP list once the
    /// status is terminal (empty while running).
    Update {
        /// The polled session.
        session: u64,
        /// Its status.
        status: WireStatus,
        /// Crowd questions dispatched so far.
        crowd_questions: u64,
        /// Answer-store hits so far.
        store_hits: u64,
        /// Final sorted rendered valid MSPs (terminal status only).
        msps: Vec<String>,
    },
    /// The request failed; the conversation may continue.
    Error {
        /// What went wrong.
        detail: String,
    },
    /// Answer to `Close`.
    Bye,
}

impl Response {
    /// Whether this frame ends a response batch (everything except the
    /// streamed `Answer`s).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Response::Answer { .. })
    }
}

fn opt_f64(v: &Option<f64>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "-".to_owned(),
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, FrameError>
where
    T::Err: std::fmt::Display,
{
    s.parse::<T>()
        .map_err(|e| FrameError(format!("bad {what}: {e}")))
}

fn seal(payload: String) -> String {
    format!("{payload}{SEP}{:016x}", fnv1a64(payload.as_bytes()))
}

/// Split a line into checksum-verified fields (the version tag is
/// `fields[0]`).
fn open(line: &str) -> Result<Vec<&str>, FrameError> {
    let (payload, checksum) = line
        .rsplit_once(SEP)
        .ok_or_else(|| FrameError("missing checksum".into()))?;
    let expected = u64::from_str_radix(checksum, 16)
        .map_err(|e| FrameError(format!("bad checksum: {e}")))?;
    let actual = fnv1a64(payload.as_bytes());
    if actual != expected {
        return Err(FrameError(format!(
            "checksum mismatch (stored {expected:016x}, computed {actual:016x})"
        )));
    }
    let fields: Vec<&str> = payload.split(SEP).collect();
    if fields.first() != Some(&VERSION_TAG) {
        return Err(FrameError(format!(
            "unsupported frame version {:?}",
            fields.first().copied().unwrap_or("")
        )));
    }
    Ok(fields)
}

fn need(fields: &[&str], n: usize) -> Result<(), FrameError> {
    if fields.len() == n {
        Ok(())
    } else {
        Err(FrameError(format!(
            "expected {n} fields, got {}",
            fields.len()
        )))
    }
}

/// Encode a request frame (no trailing newline).
pub fn encode_request(seq: u64, req: &Request) -> String {
    let body = match req {
        Request::Hello { version } => format!("h{SEP}{version}"),
        Request::Submit { spec } => format!("s{SEP}{}", spec.encode_fields()),
        Request::Poll { session } => format!("p{SEP}{session}"),
        Request::Resume { session } => format!("r{SEP}{session}"),
        Request::Cancel { session } => format!("c{SEP}{session}"),
        Request::Close => "q".to_owned(),
    };
    seal(format!("{VERSION_TAG}{SEP}{seq}{SEP}{body}"))
}

/// Decode a request frame into `(seq, request)`.
pub fn decode_request(line: &str) -> Result<(u64, Request), FrameError> {
    let fields = open(line)?;
    let seq: u64 = parse(fields[1], "sequence number")?;
    let req = match fields.get(2).copied() {
        Some("h") => {
            need(&fields, 4)?;
            Request::Hello {
                version: parse(fields[3], "version")?,
            }
        }
        Some("s") => {
            need(&fields, 3 + ADMIT_SPEC_FIELDS)?;
            Request::Submit {
                spec: AdmitSpec::decode_fields(&fields[3..]).map_err(FrameError)?,
            }
        }
        Some("p") => {
            need(&fields, 4)?;
            Request::Poll {
                session: parse(fields[3], "session id")?,
            }
        }
        Some("r") => {
            need(&fields, 4)?;
            Request::Resume {
                session: parse(fields[3], "session id")?,
            }
        }
        Some("c") => {
            need(&fields, 4)?;
            Request::Cancel {
                session: parse(fields[3], "session id")?,
            }
        }
        Some("q") => {
            need(&fields, 3)?;
            Request::Close
        }
        other => return Err(FrameError(format!("unknown request kind {other:?}"))),
    };
    Ok((seq, req))
}

/// Encode a response frame for request `reqseq`, position `idx` in its
/// batch (no trailing newline).
pub fn encode_response(reqseq: u64, idx: u64, resp: &Response) -> String {
    let body = match resp {
        Response::Welcome { version, crowd } => format!("W{SEP}{version}{SEP}{crowd}"),
        Response::Admitted { session } => format!("A{SEP}{session}"),
        Response::Resumed { original, session } => format!("R{SEP}{original}{SEP}{session}"),
        Response::Answer {
            session,
            rendered,
            support,
            valid,
        } => format!(
            "M{SEP}{session}{SEP}{}{SEP}{}{SEP}{}",
            opt_f64(support),
            u8::from(*valid),
            escape_field(rendered)
        ),
        Response::Update {
            session,
            status,
            crowd_questions,
            store_hits,
            msps,
        } => format!(
            "U{SEP}{session}{SEP}{}{SEP}{crowd_questions}{SEP}{store_hits}{SEP}{}",
            status.code(),
            encode_list(msps)
        ),
        Response::Error { detail } => format!("E{SEP}{}", escape_field(detail)),
        Response::Bye => "B".to_owned(),
    };
    seal(format!("{VERSION_TAG}{SEP}{reqseq}{SEP}{idx}{SEP}{body}"))
}

/// Decode a response frame into `(reqseq, idx, response)`.
pub fn decode_response(line: &str) -> Result<(u64, u64, Response), FrameError> {
    let fields = open(line)?;
    let reqseq: u64 = parse(fields[1], "request sequence number")?;
    let idx: u64 = parse(fields[2], "frame index")?;
    let resp = match fields.get(3).copied() {
        Some("W") => {
            need(&fields, 6)?;
            Response::Welcome {
                version: parse(fields[4], "version")?,
                crowd: parse(fields[5], "crowd size")?,
            }
        }
        Some("A") => {
            need(&fields, 5)?;
            Response::Admitted {
                session: parse(fields[4], "session id")?,
            }
        }
        Some("R") => {
            need(&fields, 6)?;
            Response::Resumed {
                original: parse(fields[4], "original id")?,
                session: parse(fields[5], "session id")?,
            }
        }
        Some("M") => {
            need(&fields, 8)?;
            Response::Answer {
                session: parse(fields[4], "session id")?,
                support: match fields[5] {
                    "-" => None,
                    s => Some(parse(s, "support")?),
                },
                valid: parse::<u8>(fields[6], "valid flag")? != 0,
                rendered: unescape_field(fields[7]).map_err(FrameError)?,
            }
        }
        Some("U") => {
            need(&fields, 9)?;
            Response::Update {
                session: parse(fields[4], "session id")?,
                status: WireStatus::from_code(fields[5]).map_err(FrameError)?,
                crowd_questions: parse(fields[6], "crowd questions")?,
                store_hits: parse(fields[7], "store hits")?,
                msps: decode_list(fields[8]).map_err(FrameError)?,
            }
        }
        Some("E") => {
            need(&fields, 5)?;
            Response::Error {
                detail: unescape_field(fields[4]).map_err(FrameError)?,
            }
        }
        Some("B") => {
            need(&fields, 4)?;
            Response::Bye
        }
        other => return Err(FrameError(format!("unknown response kind {other:?}"))),
    };
    Ok((reqseq, idx, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> AdmitSpec {
        AdmitSpec {
            query: "SELECT FACT-SETS WHERE $x | piped\nand multiline".into(),
            threshold: Some(0.4),
            roster: Some(vec![0, 2]),
            priority: 1,
            budget: Some(9),
            seed: 7,
            aggregator_sample: 4,
            specialization_ratio: 0.0,
            pruning_ratio: 0.0,
            max_questions: 5000,
            top_k: None,
            use_indexes: true,
            token: Some(0xBEEF),
        }
    }

    #[test]
    fn requests_roundtrip() {
        let requests = [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Submit {
                spec: sample_spec(),
            },
            Request::Poll { session: 3 },
            Request::Resume { session: 0 },
            Request::Cancel { session: 12 },
            Request::Close,
        ];
        for (i, req) in requests.iter().enumerate() {
            let line = encode_request(i as u64, req);
            assert!(!line.contains('\n'), "one frame = one line: {line:?}");
            let (seq, back) = decode_request(&line).expect("roundtrip");
            assert_eq!(seq, i as u64);
            assert_eq!(&back, req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let responses = [
            Response::Welcome {
                version: 1,
                crowd: 6,
            },
            Response::Admitted { session: 4 },
            Response::Resumed {
                original: 1,
                session: 5,
            },
            Response::Answer {
                session: 4,
                rendered: "{Biking doAt Central Park} | odd ; text".into(),
                support: Some(0.5),
                valid: true,
            },
            Response::Answer {
                session: 4,
                rendered: "x".into(),
                support: None,
                valid: false,
            },
            Response::Update {
                session: 4,
                status: WireStatus::Completed,
                crowd_questions: 17,
                store_hits: 2,
                msps: vec!["{a}".into(), "b;c|d".into()],
            },
            Response::Update {
                session: 4,
                status: WireStatus::Running,
                crowd_questions: 3,
                store_hits: 0,
                msps: Vec::new(),
            },
            Response::Error {
                detail: "session 9 is not resumable".into(),
            },
            Response::Bye,
        ];
        for (i, resp) in responses.iter().enumerate() {
            let line = encode_response(7, i as u64, resp);
            assert!(!line.contains('\n'), "one frame = one line: {line:?}");
            let (reqseq, idx, back) = decode_response(&line).expect("roundtrip");
            assert_eq!(reqseq, 7);
            assert_eq!(idx, i as u64);
            assert_eq!(&back, resp);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let line = encode_request(1, &Request::Poll { session: 3 });
        let mut bytes = line.clone().into_bytes();
        bytes[3] = if bytes[3] == b'1' { b'2' } else { b'1' };
        let tampered = String::from_utf8(bytes).unwrap();
        assert!(decode_request(&tampered).is_err());
        assert!(decode_request(&line[..line.len() - 4]).is_err());
        assert!(decode_request("").is_err());
        // A response frame is not a request frame and vice versa.
        let resp = encode_response(1, 0, &Response::Bye);
        assert!(decode_request(&resp).is_err());
    }

    #[test]
    fn version_tag_is_enforced() {
        let line = encode_request(1, &Request::Close);
        let retagged = seal(format!("v2{}", &line.rsplit_once(SEP).unwrap().0[2..]));
        assert!(decode_request(&retagged)
            .unwrap_err()
            .0
            .contains("version"));
    }
}
