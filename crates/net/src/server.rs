//! [`NetServer`] — the protocol state machine that multiplexes client
//! connections onto one [`OassisService`].
//!
//! The server is transport-agnostic: a driver (the blocking TCP loop in
//! [`tcp`](crate::tcp), or a deterministic simulation harness over
//! [`SimNet`](crate::SimNet)) feeds it connection events and request
//! lines, writes back the response lines it returns, and calls
//! [`pump`](NetServer::pump) between reads so admitted sessions keep
//! mining.
//!
//! ## At-least-once requests, exactly-once effects
//!
//! The transport may deliver a request zero, one, or many times, so every
//! effectful request carries an idempotency handle and the server keeps
//! just enough state to collapse retries:
//!
//! * **per-connection sequence cache** — a client sends `seq` 1, 2, 3…
//!   and never advances until a batch completes, so the server caches the
//!   response batch of the *latest* processed `seq` and resends it
//!   verbatim when the same `seq` arrives again (a retransmit after a
//!   lost response);
//! * **`Submit` tokens** — a client-chosen `u64` stored in the durable
//!   `Admit` record; a `Submit` retried on a fresh connection (or against
//!   a restarted server) maps back to the already-admitted session
//!   instead of admitting twice;
//! * **`Resume` by id** — idempotent in the service itself: a live id
//!   returns itself, a superseded id returns its successor, and a session
//!   that closed *before* a crash is answered from its durable `Close`
//!   record without re-mining.
//!
//! Kill the process after any request and replay the client's retry
//! against a recovered server: the observable outcome is the same — the
//! protocol crash oracle in `oassis-simtest` sweeps exactly this.

use std::collections::{BTreeMap, HashMap};

use oassis_core::{OassisService, SessionId, SessionSpec, SessionStatus};
use oassis_store_durable::AdmitSpec;

use crate::frame::{
    decode_request, encode_response, Request, Response, WireStatus, PROTOCOL_VERSION,
};

/// A finished session's report, flattened for replay to polling clients
/// (the full `QueryResult` stays with the first take; retries and
/// post-restart polls are answered from this).
struct CachedReport {
    status: WireStatus,
    crowd_questions: u64,
    store_hits: u64,
    msps: Vec<String>,
}

/// Per-connection protocol state.
struct ConnState {
    /// The next request sequence number this connection should send.
    expected_seq: u64,
    /// The last processed request's sequence number and encoded response
    /// batch, replayed verbatim on retransmission.
    cached: Option<(u64, Vec<String>)>,
}

fn wire_status(status: SessionStatus) -> WireStatus {
    match status {
        SessionStatus::Completed => WireStatus::Completed,
        SessionStatus::Cancelled => WireStatus::Cancelled,
        SessionStatus::BudgetExhausted => WireStatus::BudgetExhausted,
    }
}

/// The protocol front-end over one [`OassisService`].
pub struct NetServer {
    service: OassisService,
    conns: HashMap<u64, ConnState>,
    /// Reports taken from the service, kept for retried polls.
    reports: BTreeMap<u64, CachedReport>,
    events: u64,
}

impl NetServer {
    /// Wrap a service (typically started with persistence, so the
    /// protocol's crash story holds).
    pub fn new(service: OassisService) -> Self {
        NetServer {
            service,
            conns: HashMap::new(),
            reports: BTreeMap::new(),
            events: 0,
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &OassisService {
        &self.service
    }

    /// Mutable access to the wrapped service (e.g. to tune wave size).
    pub fn service_mut(&mut self) -> &mut OassisService {
        &mut self.service
    }

    /// Unwrap the service (e.g. to shut down cleanly).
    pub fn into_service(self) -> OassisService {
        self.service
    }

    /// Request frames processed so far (retransmissions answered from the
    /// sequence cache excluded) — the protocol-event clock the crash
    /// oracle kills at.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// A client connected.
    pub fn on_connect(&mut self, conn: u64) {
        self.conns.insert(
            conn,
            ConnState {
                expected_seq: 1,
                cached: None,
            },
        );
    }

    /// A client's connection died; its protocol state is dropped (the
    /// client starts a fresh sequence space when it reconnects).
    pub fn on_disconnect(&mut self, conn: u64) {
        self.conns.remove(&conn);
    }

    /// Drive one service scheduling cycle; returns whether any session is
    /// still live. Call between protocol reads so sessions keep mining
    /// while clients are quiet.
    pub fn pump(&mut self) -> bool {
        self.service.run_cycle()
    }

    /// Handle one request line from `conn`, returning the encoded
    /// response lines to send back (in order).
    pub fn on_line(&mut self, conn: u64, line: &str) -> Vec<String> {
        let state = self.conns.entry(conn).or_insert(ConnState {
            expected_seq: 1,
            cached: None,
        });
        let (seq, req) = match decode_request(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                // Unparseable frames get a best-effort error tied to no
                // sequence; the client ignores it and retransmits.
                return vec![encode_response(0, 0, &Response::Error { detail: e.0 })];
            }
        };
        if let Some((cached_seq, batch)) = &state.cached {
            if seq == *cached_seq {
                return batch.clone(); // retransmission: replay verbatim
            }
        }
        if seq != state.expected_seq {
            return vec![encode_response(
                seq,
                0,
                &Response::Error {
                    detail: format!(
                        "out-of-order request (seq {seq}, expected {})",
                        state.expected_seq
                    ),
                },
            )];
        }
        self.events += 1;
        let responses = self.handle(&req);
        let batch: Vec<String> = responses
            .iter()
            .enumerate()
            .map(|(idx, resp)| encode_response(seq, idx as u64, resp))
            .collect();
        let state = self.conns.get_mut(&conn).expect("inserted above");
        state.expected_seq = seq + 1;
        state.cached = Some((seq, batch.clone()));
        batch
    }

    fn handle(&mut self, req: &Request) -> Vec<Response> {
        match req {
            Request::Hello { version } => {
                if *version != PROTOCOL_VERSION {
                    return vec![Response::Error {
                        detail: format!(
                            "protocol version {version} not supported (server speaks \
                             {PROTOCOL_VERSION})"
                        ),
                    }];
                }
                vec![Response::Welcome {
                    version: PROTOCOL_VERSION,
                    crowd: self.service.crowd_len() as u64,
                }]
            }
            Request::Submit { spec } => self.handle_submit(spec.clone()),
            Request::Poll { session } => self.handle_poll(*session),
            Request::Resume { session } => self.handle_resume(*session),
            Request::Cancel { session } => {
                self.service.cancel(SessionId(*session));
                vec![self.status_update(*session)]
            }
            Request::Close => vec![Response::Bye],
        }
    }

    fn handle_submit(&mut self, spec: AdmitSpec) -> Vec<Response> {
        let Some(token) = spec.token else {
            return vec![Response::Error {
                detail: "Submit requires an idempotency token".into(),
            }];
        };
        // Token dedup: a retried Submit (new connection, or a restarted
        // server replaying its log) resolves to the admission it already
        // paid for — resuming it first if the crash interrupted it.
        if let Some(id) = self.service.session_for_token(token) {
            if self.service.is_recoverable(id) {
                return match self.service.resume_by_id(id) {
                    Ok(resumed) => vec![Response::Admitted { session: resumed.0 }],
                    Err(e) => vec![Response::Error {
                        detail: e.to_string(),
                    }],
                };
            }
            return vec![Response::Admitted { session: id.0 }];
        }
        match self.service.submit_with_token(SessionSpec::from_admit(spec), token) {
            Ok(id) => vec![Response::Admitted { session: id.0 }],
            Err(e) => vec![Response::Error {
                detail: e.to_string(),
            }],
        }
    }

    fn handle_resume(&mut self, session: u64) -> Vec<Response> {
        let id = SessionId(session);
        // A session that closed before the crash (or whose report this
        // server already took) needs no re-admission: resolve to itself
        // and let Poll answer from the cached outcome.
        if self.reports.contains_key(&session)
            || self.service.recovered_closed(id).is_some()
            || self.service.is_admitted(id)
        {
            return vec![Response::Resumed {
                original: session,
                session,
            }];
        }
        match self.service.resume_by_id(id) {
            Ok(resumed) => vec![Response::Resumed {
                original: session,
                session: resumed.0,
            }],
            Err(e) => vec![Response::Error {
                detail: e.to_string(),
            }],
        }
    }

    fn handle_poll(&mut self, session: u64) -> Vec<Response> {
        let id = SessionId(session);
        let mut responses: Vec<Response> = self
            .service
            .take_partials(id)
            .into_iter()
            .map(|a| Response::Answer {
                session,
                rendered: a.rendered,
                support: a.support,
                valid: a.valid,
            })
            .collect();
        responses.push(self.status_update(session));
        responses
    }

    /// Move a finished slot's report into the replay cache (flattened to
    /// the wire shape), so retried polls and post-restart clients see the
    /// same outcome the first poll did.
    fn harvest(&mut self, session: u64) {
        let id = SessionId(session);
        if self.service.session_status(id).is_none() {
            return;
        }
        let report = self
            .service
            .take_report(id)
            .expect("status was Some, so the slot is takeable");
        let mut msps: Vec<String> = report
            .result
            .answers
            .iter()
            .filter(|a| a.valid)
            .map(|a| a.rendered.clone())
            .collect();
        msps.sort();
        self.reports.insert(
            session,
            CachedReport {
                status: wire_status(report.status),
                crowd_questions: report.crowd_questions as u64,
                store_hits: report.store_hits as u64,
                msps,
            },
        );
    }

    /// The terminal-or-running `Update` for `session`, answered from (in
    /// order) the live slot, the taken-report cache, or the recovered
    /// pre-crash `Close` outcome.
    fn status_update(&mut self, session: u64) -> Response {
        self.harvest(session);
        let id = SessionId(session);
        if let Some((crowd_questions, store_hits)) = self.service.session_progress(id) {
            return Response::Update {
                session,
                status: WireStatus::Running,
                crowd_questions: crowd_questions as u64,
                store_hits: store_hits as u64,
                msps: Vec::new(),
            };
        }
        if let Some(report) = self.reports.get(&session) {
            return Response::Update {
                session,
                status: report.status,
                crowd_questions: report.crowd_questions,
                store_hits: report.store_hits,
                msps: report.msps.clone(),
            };
        }
        if let Some(outcome) = self.service.recovered_closed(id) {
            return Response::Update {
                session,
                status: wire_status(outcome.status),
                crowd_questions: outcome.crowd_questions as u64,
                store_hits: 0,
                msps: outcome.msps.clone(),
            };
        }
        if self.service.is_recoverable(id) {
            return Response::Error {
                detail: format!("session {session} awaits Resume after a restart"),
            };
        }
        Response::Error {
            detail: format!("unknown session {session}"),
        }
    }
}
