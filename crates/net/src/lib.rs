//! # oassis-net — the networked session front-end
//!
//! A dependency-free, line-framed request/response protocol that exposes
//! an [`OassisService`](oassis_core::OassisService) (the layer-4 session
//! scheduler, typically backed by the durable store) to remote clients:
//!
//! ```text
//!   client ──"v1|seq|kind|fields…|checksum"──▶ server
//!   client ◀─"v1|seq|idx|kind|fields…|checksum"── server   (a batch)
//! ```
//!
//! Requests are `Hello`, `Submit` (a full [`AdmitSpec`] — the same
//! 13-field encoding the write-ahead log uses), `Poll`, `Resume`,
//! `Cancel` and `Close`; responses stream partial answers (`Answer`
//! frames) ahead of an authoritative terminal `Update` carrying the
//! session's valid-MSP set. Every frame is versioned and checksummed
//! with the same FNV-1a-64 the WAL uses, so a corrupted line is detected
//! and recovered by retransmission rather than misparsed.
//!
//! The crate splits along a [`Transport`] seam:
//!
//! * [`frame`] — the codec (pure functions, no I/O);
//! * [`client`] — [`NetClient`], a step-driven request state machine with
//!   retransmission and batch reassembly;
//! * [`server`] — [`NetServer`], the transport-agnostic protocol state
//!   machine multiplexing connections onto one service, with the
//!   idempotency machinery (sequence cache, `Submit` tokens, `Resume`)
//!   that makes at-least-once delivery produce exactly-once effects;
//! * [`tcp`] — the real thing: [`TcpTransport`] and the blocking
//!   [`TcpNetServer`] loop over `std::net`;
//! * [`sim`] — [`SimNet`]/[`SimTransport`], a deterministic in-memory
//!   network with seeded drop/duplicate/delay/sever injection and a
//!   kill-the-server switch, driving the protocol crash oracle in
//!   `oassis-simtest`.
//!
//! [`AdmitSpec`]: oassis_store_durable::AdmitSpec

pub mod client;
pub mod frame;
pub mod server;
pub mod sim;
pub mod tcp;
pub mod transport;

pub use client::{is_request_line, NetClient, MAX_RETRIES, RETRY_AFTER_STEPS};
pub use frame::{
    decode_request, decode_response, encode_request, encode_response, FrameError, Request,
    Response, WireStatus, PROTOCOL_VERSION,
};
pub use server::NetServer;
pub use sim::{FaultConfig, SimNet, SimTransport};
pub use tcp::{TcpNetServer, TcpTransport};
pub use transport::{NetError, Transport};
