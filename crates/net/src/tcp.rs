//! Real-socket glue: a non-blocking line-reader, the [`TcpTransport`]
//! client endpoint, and [`TcpNetServer`] — the blocking single-threaded
//! accept/read/respond/pump loop that drives a [`NetServer`] over
//! `std::net`.
//!
//! The server loop deliberately stays single-threaded: the protocol
//! state machine and the mining service are one mutable structure, and
//! multiplexing N sockets through one loop (reads are non-blocking, the
//! service is pumped between reads) keeps every interleaving the
//! protocol can see identical to what the deterministic simulation
//! explores — threads would add interleavings the oracle cannot.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::server::NetServer;
use crate::transport::{NetError, Transport};

/// Pull complete lines out of a non-blocking stream's buffered bytes.
fn drain_lines(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<Vec<String>, std::io::Error> {
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::ConnectionAborted,
                    "peer closed",
                ))
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let mut lines = Vec::new();
    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = buf.drain(..=pos).collect();
        let text = String::from_utf8_lossy(&line[..line.len() - 1])
            .trim_end_matches('\r')
            .to_owned();
        if !text.is_empty() {
            lines.push(text);
        }
    }
    Ok(lines)
}

fn write_line(stream: &mut TcpStream, line: &str) -> Result<(), std::io::Error> {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    let mut off = 0;
    while off < bytes.len() {
        match stream.write(&bytes[off..]) {
            Ok(n) => off += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// A [`Transport`] over one TCP connection.
pub struct TcpTransport {
    addr: String,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl TcpTransport {
    /// Connect to `addr` (e.g. `"127.0.0.1:7464"`).
    pub fn connect(addr: impl Into<String>) -> Result<Self, NetError> {
        let mut t = TcpTransport {
            addr: addr.into(),
            stream: None,
            buf: Vec::new(),
        };
        t.reconnect()?;
        Ok(t)
    }

    fn stream(&mut self) -> Result<&mut TcpStream, NetError> {
        self.stream
            .as_mut()
            .ok_or_else(|| NetError::Closed("not connected".into()))
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, line: &str) -> Result<(), NetError> {
        let stream = self.stream()?;
        write_line(stream, line).map_err(|e| {
            self.stream = None;
            NetError::Closed(e.to_string())
        })
    }

    fn try_recv(&mut self) -> Result<Option<String>, NetError> {
        // Buffered whole lines first, then poll the socket.
        if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1])
                .trim_end_matches('\r')
                .to_owned();
            return Ok(Some(text));
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err(NetError::Closed("not connected".into()));
        };
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                self.stream = None;
                Err(NetError::Closed("peer closed".into()))
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                self.try_recv()
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(None),
            Err(e) => {
                self.stream = None;
                Err(NetError::Closed(e.to_string()))
            }
        }
    }

    fn reconnect(&mut self) -> Result<(), NetError> {
        self.stream = None;
        self.buf.clear();
        let stream = TcpStream::connect(&self.addr).map_err(|e| NetError::Closed(e.to_string()))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        stream.set_nodelay(true).ok();
        self.stream = Some(stream);
        Ok(())
    }

    fn close(&mut self) {
        self.stream = None;
        self.buf.clear();
    }
}

/// The blocking TCP front-end over a [`NetServer`].
pub struct TcpNetServer {
    listener: TcpListener,
    server: NetServer,
    conns: HashMap<u64, (TcpStream, Vec<u8>)>,
    next_conn: u64,
}

impl TcpNetServer {
    /// Bind `addr` (use port 0 to let the OS pick) around `server`.
    pub fn bind(addr: impl ToSocketAddrs, server: NetServer) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpNetServer {
            listener,
            server,
            conns: HashMap::new(),
            next_conn: 0,
        })
    }

    /// The bound address (for port-0 binds).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The wrapped protocol server.
    pub fn server(&self) -> &NetServer {
        &self.server
    }

    /// Unwrap (e.g. to recover the service after serving).
    pub fn into_server(self) -> NetServer {
        self.server
    }

    /// One scheduler turn: accept pending connections, read and answer
    /// every complete request line, pump the mining service once.
    /// Returns whether anything happened (connection, request, or live
    /// mining work) — callers sleep briefly when idle.
    pub fn poll_once(&mut self) -> std::io::Result<bool> {
        let mut active = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    stream.set_nodelay(true).ok();
                    let conn = self.next_conn;
                    self.next_conn += 1;
                    self.server.on_connect(conn);
                    self.conns.insert(conn, (stream, Vec::new()));
                    active = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        let mut dead: Vec<u64> = Vec::new();
        let conn_ids: Vec<u64> = self.conns.keys().copied().collect();
        for conn in conn_ids {
            let (stream, buf) = self.conns.get_mut(&conn).expect("listed above");
            let lines = match drain_lines(stream, buf) {
                Ok(lines) => lines,
                Err(_) => {
                    dead.push(conn);
                    continue;
                }
            };
            for line in lines {
                active = true;
                let responses = self.server.on_line(conn, &line);
                let closing = line_closes(&line);
                let (stream, _) = self.conns.get_mut(&conn).expect("still present");
                let mut failed = false;
                for resp in &responses {
                    if write_line(stream, resp).is_err() {
                        failed = true;
                        break;
                    }
                }
                if failed || closing {
                    dead.push(conn);
                    break;
                }
            }
        }
        for conn in dead {
            self.server.on_disconnect(conn);
            self.conns.remove(&conn);
        }
        if self.server.pump() {
            active = true;
        }
        Ok(active)
    }

    /// Serve until `stop()` returns true, sleeping briefly when idle.
    pub fn serve_until(&mut self, stop: impl Fn() -> bool) -> std::io::Result<()> {
        while !stop() {
            if !self.poll_once()? {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        Ok(())
    }
}

/// Whether a request line is a `Close` (the TCP loop drops the
/// connection after answering it).
fn line_closes(line: &str) -> bool {
    matches!(
        crate::frame::decode_request(line),
        Ok((_, crate::frame::Request::Close))
    )
}
