//! AST for OASSIS-QL queries.

use oassis_sparql::{Var, VarTable, WhereClause};
use oassis_vocab::{ElementId, RelationId};

/// The output form requested by the `SELECT` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectForm {
    /// `SELECT FACT-SETS` — answers are instantiated fact-sets.
    #[default]
    FactSets,
    /// `SELECT VARIABLES` — answers are variable assignments.
    Variables,
}

/// A multiplicity annotation on a `SATISFYING` variable (Section 3,
/// "Multiplicities"). It bounds how many distinct values the variable may
/// take *within one assignment*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Multiplicity {
    /// Default: exactly one value.
    #[default]
    One,
    /// `+` — at least one value.
    AtLeastOne,
    /// `*` — any number of values, including zero.
    Any,
    /// `?` — zero or one value.
    Optional,
    /// `{n}` — exactly `n` values.
    Exactly(u32),
}

impl Multiplicity {
    /// Smallest admissible number of values.
    pub fn min(&self) -> u32 {
        match self {
            Multiplicity::One => 1,
            Multiplicity::AtLeastOne => 1,
            Multiplicity::Any => 0,
            Multiplicity::Optional => 0,
            Multiplicity::Exactly(n) => *n,
        }
    }

    /// Largest admissible number of values (`None` = unbounded).
    pub fn max(&self) -> Option<u32> {
        match self {
            Multiplicity::One => Some(1),
            Multiplicity::AtLeastOne => None,
            Multiplicity::Any => None,
            Multiplicity::Optional => Some(1),
            Multiplicity::Exactly(n) => Some(*n),
        }
    }

    /// Whether `count` values satisfy this multiplicity.
    pub fn admits(&self, count: u32) -> bool {
        count >= self.min() && self.max().is_none_or(|m| count <= m)
    }
}

/// A subject/object position in a `SATISFYING` meta-fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QlTerm {
    /// A variable (named, or anonymous from `[]`).
    Var(Var),
    /// A constant element.
    Element(ElementId),
}

impl QlTerm {
    /// The variable, if this position is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            QlTerm::Var(v) => Some(*v),
            QlTerm::Element(_) => None,
        }
    }
}

/// The relation position in a `SATISFYING` meta-fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QlRel {
    /// A relation variable (e.g. `$p`, or anonymous from `[]`).
    Var(Var),
    /// A constant relation.
    Relation(RelationId),
}

impl QlRel {
    /// The variable, if this position is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            QlRel::Var(v) => Some(*v),
            QlRel::Relation(_) => None,
        }
    }
}

/// One meta-fact of the `SATISFYING` clause, e.g. `$y+ doAt $x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatPattern {
    /// Subject position.
    pub subject: QlTerm,
    /// Multiplicity attached to the subject (if it is a variable).
    pub subject_mult: Multiplicity,
    /// Relation position.
    pub relation: QlRel,
    /// Object position.
    pub object: QlTerm,
    /// Multiplicity attached to the object (if it is a variable).
    pub object_mult: Multiplicity,
}

impl SatPattern {
    /// All variables mentioned by this meta-fact.
    pub fn vars(&self) -> impl Iterator<Item = Var> {
        self.subject
            .as_var()
            .into_iter()
            .chain(self.relation.as_var())
            .chain(self.object.as_var())
    }

    /// The multiplicity attached to `v` in this pattern, if `v` occurs here.
    pub fn mult_of(&self, v: Var) -> Option<Multiplicity> {
        if self.subject.as_var() == Some(v) {
            Some(self.subject_mult)
        } else if self.object.as_var() == Some(v) {
            Some(self.object_mult)
        } else if self.relation.as_var() == Some(v) {
            Some(Multiplicity::One)
        } else {
            None
        }
    }
}

/// The `SATISFYING ... WITH SUPPORT = θ` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct SatisfyingClause {
    /// The meta–fact-set to be mined.
    pub patterns: Vec<SatPattern>,
    /// Whether the `MORE` keyword was given (mine any co-occurring facts).
    pub more: bool,
    /// The support threshold θ ∈ [0, 1].
    pub support: f64,
}

/// A complete OASSIS-QL query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Output form.
    pub select: SelectForm,
    /// Whether `ALL` significant patterns were requested (default: MSPs only).
    pub all: bool,
    /// The WHERE clause (group graph pattern plus solution modifiers,
    /// evaluated over the ontology).
    pub where_clause: WhereClause,
    /// The mining clause.
    pub satisfying: SatisfyingClause,
    /// The query's variable namespace (shared by both clauses).
    pub vars: VarTable,
}

impl Query {
    /// Variables that appear in the `SATISFYING` clause, in first-use order.
    pub fn satisfying_vars(&self) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for p in &self.satisfying.patterns {
            for v in p.vars() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Variables that appear in the `WHERE` clause (anywhere in the group
    /// tree), in first-use order.
    pub fn where_vars(&self) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for p in self.where_clause.pattern.all_triples() {
            for v in p.vars() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The multiplicity of `v` across the `SATISFYING` clause (the first
    /// annotated occurrence wins; validation rejects conflicts).
    pub fn multiplicity_of(&self, v: Var) -> Multiplicity {
        self.satisfying
            .patterns
            .iter()
            .filter_map(|p| p.mult_of(v))
            .find(|m| *m != Multiplicity::One)
            .unwrap_or(Multiplicity::One)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicity_bounds() {
        assert_eq!(Multiplicity::One.min(), 1);
        assert_eq!(Multiplicity::One.max(), Some(1));
        assert_eq!(Multiplicity::AtLeastOne.max(), None);
        assert_eq!(Multiplicity::Any.min(), 0);
        assert_eq!(Multiplicity::Optional.max(), Some(1));
        assert_eq!(Multiplicity::Exactly(3).min(), 3);
        assert_eq!(Multiplicity::Exactly(3).max(), Some(3));
    }

    #[test]
    fn multiplicity_admits() {
        assert!(Multiplicity::One.admits(1));
        assert!(!Multiplicity::One.admits(2));
        assert!(Multiplicity::AtLeastOne.admits(5));
        assert!(!Multiplicity::AtLeastOne.admits(0));
        assert!(Multiplicity::Any.admits(0));
        assert!(Multiplicity::Optional.admits(0) && Multiplicity::Optional.admits(1));
        assert!(!Multiplicity::Optional.admits(2));
        assert!(Multiplicity::Exactly(2).admits(2) && !Multiplicity::Exactly(2).admits(1));
    }

    #[test]
    fn sat_pattern_vars_and_mults() {
        let v0 = Var(0);
        let v1 = Var(1);
        let p = SatPattern {
            subject: QlTerm::Var(v0),
            subject_mult: Multiplicity::AtLeastOne,
            relation: QlRel::Relation(RelationId(0)),
            object: QlTerm::Var(v1),
            object_mult: Multiplicity::One,
        };
        assert_eq!(p.vars().collect::<Vec<_>>(), [v0, v1]);
        assert_eq!(p.mult_of(v0), Some(Multiplicity::AtLeastOne));
        assert_eq!(p.mult_of(v1), Some(Multiplicity::One));
        assert_eq!(p.mult_of(Var(9)), None);
    }
}
