//! Parser for complete OASSIS-QL queries.
//!
//! ```text
//! query      := SELECT (FACT-SETS | VARIABLES) ALL?
//!               WHERE where-clause?
//!               SATISFYING satpattern (DOT satpattern)* (DOT MORE)? DOT?
//!               WITH SUPPORT = number
//! satpattern := term mult? relpos term mult?
//! term       := VAR | NAME | '[]'
//! relpos     := NAME | VAR | '[]'
//! mult       := '+' | '*' | '?' | '{' INT '}'
//! ```
//!
//! The `where-clause` production is the full SPARQL fragment of
//! `oassis-sparql` — group patterns with `UNION` / `OPTIONAL` / `FILTER`,
//! property paths (`*`, `+`, `?`, `/`, `|`), and the solution modifiers
//! `DISTINCT` / `ORDER BY` / `LIMIT` / `OFFSET` — delegated to
//! [`PatternParser::where_clause`].
//!
//! Keywords are uppercase and reserved; element names that collide with a
//! keyword must be written in `<angle brackets>`.

use oassis_sparql::lexer::TokenKind;
use oassis_sparql::parser::PatternParser;
use oassis_sparql::{tokenize, Span, Token, VarTable};
use oassis_store::Ontology;

use crate::ast::{Multiplicity, QlRel, QlTerm, Query, SatPattern, SatisfyingClause, SelectForm};
use crate::error::QlError;
use crate::validate::validate_query;

const KEYWORDS: &[&str] = &[
    "SELECT",
    "WHERE",
    "SATISFYING",
    "MORE",
    "WITH",
    "SUPPORT",
    "FACT-SETS",
    "VARIABLES",
    "ALL",
    // Reserved by the WHERE grammar; quarantined here too so that
    // `SATISFYING` meta-facts cannot shadow them with bare names.
    "OPTIONAL",
    "UNION",
    "FILTER",
    "DISTINCT",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "IN",
    "NOT",
];

fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

/// Parse and validate an OASSIS-QL query against `ontology`.
///
/// ```
/// use oassis_ql::parse_query;
/// use oassis_store::ontology::figure1_ontology;
///
/// let o = figure1_ontology();
/// let q = parse_query(
///     "SELECT FACT-SETS WHERE $y subClassOf* Activity \
///      SATISFYING $y+ doAt <Central Park> WITH SUPPORT = 0.4",
///     &o,
/// ).unwrap();
/// assert_eq!(q.satisfying.support, 0.4);
/// assert_eq!(q.where_clause.required_triples().len(), 1);
/// ```
pub fn parse_query(src: &str, ontology: &Ontology) -> Result<Query, QlError> {
    let tokens = tokenize(src)?;
    let mut p = QueryParser {
        tokens: &tokens,
        pos: 0,
        ontology,
    };
    let q = p.query()?;
    validate_query(&q)?;
    Ok(q)
}

struct QueryParser<'a> {
    tokens: &'a [Token],
    pos: usize,
    ontology: &'a Ontology,
}

impl<'a> QueryParser<'a> {
    fn peek(&self) -> Option<&'a TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn here(&self) -> (usize, Span) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or((0, Span { start: 0, end: 0 }), |t| (t.line, t.span))
    }

    fn bump(&mut self) -> Option<&'a TokenKind> {
        let t = self.peek();
        self.pos += 1;
        t
    }

    /// Error at the *previous* token if one was just consumed, else at the
    /// current position — `bump()`-then-`err()` is the dominant pattern.
    fn err(&self, msg: impl Into<String>) -> QlError {
        let (line, span) = self.here();
        QlError::Parse {
            line,
            span,
            msg: msg.into(),
        }
    }

    /// Error pinned to the token just consumed by `bump()`.
    fn err_prev(&self, msg: impl Into<String>) -> QlError {
        let at = QueryParser {
            tokens: self.tokens,
            pos: self.pos.saturating_sub(1),
            ontology: self.ontology,
        };
        at.err(msg)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QlError> {
        match self.bump() {
            Some(TokenKind::Name(n)) if n == kw => Ok(()),
            other => Err(self.err_prev(format!("expected {kw}, got {other:?}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Name(n)) if n == kw)
    }

    fn query(&mut self) -> Result<Query, QlError> {
        let mut vars = VarTable::new();

        // SELECT clause.
        self.expect_keyword("SELECT")?;
        let select = match self.bump() {
            Some(TokenKind::Name(n)) if n == "FACT-SETS" => SelectForm::FactSets,
            Some(TokenKind::Name(n)) if n == "VARIABLES" => SelectForm::Variables,
            other => {
                return Err(self.err_prev(format!("expected FACT-SETS or VARIABLES, got {other:?}")))
            }
        };
        let all = if self.at_keyword("ALL") {
            self.bump();
            true
        } else {
            false
        };

        // WHERE clause: hand the token range up to SATISFYING to the SPARQL
        // where-clause parser (groups, UNION/OPTIONAL/FILTER, paths and
        // solution modifiers). Keywords cannot appear inside patterns
        // (collision requires <angle brackets>), so scanning for SATISFYING
        // is safe.
        self.expect_keyword("WHERE")?;
        let where_start = self.pos;
        let sat_pos = (where_start..self.tokens.len())
            .find(|&i| matches!(&self.tokens[i].kind, TokenKind::Name(n) if n == "SATISFYING"))
            .ok_or_else(|| self.err("missing SATISFYING clause"))?;
        let mut where_tokens = &self.tokens[where_start..sat_pos];
        // Allow an optional trailing `.` before SATISFYING.
        if let Some((TokenKind::Dot, rest)) = where_tokens.split_last().map(|(t, r)| (&t.kind, r)) {
            where_tokens = rest;
        }
        let mut pp = PatternParser {
            tokens: where_tokens,
            pos: 0,
            ontology: self.ontology,
        };
        let where_clause = pp.where_clause(&mut vars)?;
        self.pos = sat_pos;

        // SATISFYING clause.
        self.expect_keyword("SATISFYING")?;
        let (patterns, more) = self.sat_patterns(&mut vars)?;

        // WITH SUPPORT = θ.
        self.expect_keyword("WITH")?;
        self.expect_keyword("SUPPORT")?;
        match self.bump() {
            Some(TokenKind::Equals) => {}
            other => return Err(self.err(format!("expected `=`, got {other:?}"))),
        }
        let support = match self.bump() {
            Some(TokenKind::Number(n)) => n
                .parse::<f64>()
                .map_err(|e| self.err(format!("bad support value {n:?}: {e}")))?,
            other => return Err(self.err(format!("expected support value, got {other:?}"))),
        };
        if self.peek().is_some() {
            return Err(self.err("unexpected tokens after WITH SUPPORT"));
        }

        Ok(Query {
            select,
            all,
            where_clause,
            satisfying: SatisfyingClause {
                patterns,
                more,
                support,
            },
            vars,
        })
    }

    fn sat_patterns(&mut self, vars: &mut VarTable) -> Result<(Vec<SatPattern>, bool), QlError> {
        let mut patterns = Vec::new();
        let mut more = false;
        loop {
            if self.at_keyword("WITH") {
                break;
            }
            if self.at_keyword("MORE") {
                self.bump();
                more = true;
                // MORE must be the final item; allow a trailing `.`.
                if matches!(self.peek(), Some(TokenKind::Dot)) {
                    self.bump();
                }
                if !self.at_keyword("WITH") {
                    return Err(self.err("MORE must be the last SATISFYING item"));
                }
                break;
            }
            patterns.push(self.sat_pattern(vars)?);
            match self.peek() {
                Some(TokenKind::Dot) => {
                    self.bump();
                }
                Some(TokenKind::Name(n)) if n == "WITH" => {}
                other => {
                    return Err(self.err(format!(
                        "expected `.` or WITH after meta-fact, got {other:?}"
                    )))
                }
            }
        }
        Ok((patterns, more))
    }

    fn sat_pattern(&mut self, vars: &mut VarTable) -> Result<SatPattern, QlError> {
        let (subject, subject_mult) = self.sat_term(vars)?;
        let relation = self.sat_rel(vars)?;
        let (object, object_mult) = self.sat_term(vars)?;
        Ok(SatPattern {
            subject,
            subject_mult,
            relation,
            object,
            object_mult,
        })
    }

    fn sat_term(&mut self, vars: &mut VarTable) -> Result<(QlTerm, Multiplicity), QlError> {
        let term = match self.bump() {
            Some(TokenKind::Var(name)) => QlTerm::Var(vars.var(name)),
            Some(TokenKind::Blank) => QlTerm::Var(vars.fresh("blank")),
            Some(TokenKind::Name(name)) if !is_keyword(name) => {
                let e = self
                    .ontology
                    .vocabulary()
                    .element(name)
                    .ok_or_else(|| self.err_prev(format!("unknown element {name:?}")))?;
                QlTerm::Element(e)
            }
            other => return Err(self.err_prev(format!("expected term, got {other:?}"))),
        };
        let mult = self.multiplicity()?;
        if mult != Multiplicity::One && term.as_var().is_none() {
            return Err(self.err("multiplicities may only annotate variables"));
        }
        Ok((term, mult))
    }

    fn sat_rel(&mut self, vars: &mut VarTable) -> Result<QlRel, QlError> {
        match self.bump() {
            Some(TokenKind::Var(name)) => Ok(QlRel::Var(vars.var(name))),
            Some(TokenKind::Blank) => Ok(QlRel::Var(vars.fresh("rel"))),
            Some(TokenKind::Name(name)) if !is_keyword(name) => {
                let r = self
                    .ontology
                    .vocabulary()
                    .relation(name)
                    .ok_or_else(|| self.err_prev(format!("unknown relation {name:?}")))?;
                Ok(QlRel::Relation(r))
            }
            other => Err(self.err_prev(format!("expected relation, got {other:?}"))),
        }
    }

    fn multiplicity(&mut self) -> Result<Multiplicity, QlError> {
        match self.peek() {
            Some(TokenKind::Plus) => {
                self.bump();
                Ok(Multiplicity::AtLeastOne)
            }
            Some(TokenKind::Star) => {
                self.bump();
                Ok(Multiplicity::Any)
            }
            Some(TokenKind::Question) => {
                self.bump();
                Ok(Multiplicity::Optional)
            }
            Some(TokenKind::LBrace) => {
                self.bump();
                let n = match self.bump() {
                    Some(TokenKind::Number(n)) => n
                        .parse::<u32>()
                        .map_err(|e| self.err(format!("bad multiplicity {n:?}: {e}")))?,
                    other => {
                        return Err(self.err(format!("expected multiplicity count, got {other:?}")))
                    }
                };
                match self.bump() {
                    Some(TokenKind::RBrace) => Ok(Multiplicity::Exactly(n)),
                    other => Err(self.err(format!("expected `}}`, got {other:?}"))),
                }
            }
            _ => Ok(Multiplicity::One),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_store::ontology::figure1_ontology;

    /// The paper's Figure 2 query, verbatim up to lexical conventions.
    pub const FIGURE2: &str = r#"
        SELECT FACT-SETS
        WHERE
          $w subClassOf* Attraction.
          $x instanceOf $w.
          $x inside NYC.
          $x hasLabel "child-friendly".
          $y subClassOf* Activity.
          $z instanceOf Restaurant.
          $z nearBy $x
        SATISFYING
          $y+ doAt $x.
          [] eatAt $z.
          MORE
        WITH SUPPORT = 0.4
    "#;

    #[test]
    fn parses_figure2() {
        let o = figure1_ontology();
        let q = parse_query(FIGURE2, &o).unwrap();
        assert_eq!(q.select, SelectForm::FactSets);
        assert!(!q.all);
        assert_eq!(q.where_clause.required_triples().len(), 7);
        assert_eq!(q.satisfying.patterns.len(), 2);
        assert!(q.satisfying.more);
        assert_eq!(q.satisfying.support, 0.4);
        let y = q.vars.get("y").unwrap();
        assert_eq!(q.multiplicity_of(y), Multiplicity::AtLeastOne);
        // `[] eatAt $z` introduced one anonymous variable.
        let sat_vars = q.satisfying_vars();
        assert_eq!(sat_vars.len(), 4); // y, x, blank, z
        assert!(sat_vars.iter().any(|&v| q.vars.is_anon(v)));
    }

    #[test]
    fn select_variables_all() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT VARIABLES ALL WHERE $x instanceOf Park SATISFYING $y doAt $x WITH SUPPORT = 0.2",
            &o,
        )
        .unwrap();
        assert_eq!(q.select, SelectForm::Variables);
        assert!(q.all);
    }

    #[test]
    fn empty_where_is_frequent_itemset_mining() {
        // The paper: "to capture mining for frequent itemsets, use an empty
        // WHERE clause and $x+ [] [] as the SATISFYING clause".
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 0.1",
            &o,
        )
        .unwrap();
        assert!(q.where_clause.pattern.items.is_empty());
        let p = &q.satisfying.patterns[0];
        assert!(p.relation.as_var().is_some(), "blank relation is a var");
        assert!(p.object.as_var().is_some());
        assert_eq!(p.subject_mult, Multiplicity::AtLeastOne);
    }

    #[test]
    fn exact_multiplicity() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT FACT-SETS WHERE SATISFYING $y{2} doAt $x WITH SUPPORT = 0.3",
            &o,
        )
        .unwrap();
        let y = q.vars.get("y").unwrap();
        assert_eq!(q.multiplicity_of(y), Multiplicity::Exactly(2));
    }

    #[test]
    fn relation_variable() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT FACT-SETS WHERE SATISFYING $x $p $z WITH SUPPORT = 0.3",
            &o,
        )
        .unwrap();
        let p = q.vars.get("p").unwrap();
        assert_eq!(q.satisfying.patterns[0].relation, QlRel::Var(p));
    }

    #[test]
    fn trailing_dot_before_satisfying() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT FACT-SETS WHERE $x instanceOf Park. SATISFYING $y doAt $x WITH SUPPORT = 0.2",
            &o,
        )
        .unwrap();
        assert_eq!(q.where_clause.required_triples().len(), 1);
    }

    #[test]
    fn where_accepts_the_full_sparql_fragment() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT FACT-SETS WHERE \
               { $x instanceOf Park } UNION { $x instanceOf Zoo }. \
               OPTIONAL { $x nearBy $z }. \
               FILTER($x NOT IN (<Bronx Zoo>)) \
               ORDER BY $x LIMIT 5 \
             SATISFYING $y+ doAt $x WITH SUPPORT = 0.3",
            &o,
        )
        .unwrap();
        assert_eq!(q.where_clause.limit, Some(5));
        assert_eq!(q.where_clause.order_by.len(), 1);
        // UNION branches + OPTIONAL body all contribute triples.
        assert_eq!(q.where_clause.pattern.all_triples().len(), 3);
        // Top-level required triples: none (both patterns sit in sub-groups).
        assert!(q.where_clause.required_triples().is_empty());
    }

    #[test]
    fn compound_paths_parse_inside_queries() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT FACT-SETS WHERE $z nearBy/inside $c. $w subClassOf? Attraction \
             SATISFYING $y doAt $z WITH SUPPORT = 0.2",
            &o,
        )
        .unwrap();
        let triples = q.where_clause.required_triples();
        assert!(triples[0].path.is_path());
        assert!(triples[1].path.is_path());
    }

    #[test]
    fn errors_carry_the_offending_span() {
        let o = figure1_ontology();
        let src =
            "SELECT FACT-SETS WHERE SATISFYING $x orbits $y WITH SUPPORT = 0.1";
        let err = parse_query(src, &o).unwrap_err();
        let span = err.span().expect("parse errors carry spans");
        assert_eq!(&src[span.start..span.end], "orbits");
        let msg = err.to_string();
        assert!(msg.contains("orbits"), "{msg}");
        assert!(msg.contains(&format!("bytes {}..{}", span.start, span.end)), "{msg}");
    }

    #[test]
    fn where_errors_surface_as_sparql_errors_with_spans() {
        let o = figure1_ontology();
        let src = "SELECT FACT-SETS WHERE $x instanceOf Nonexistent \
                   SATISFYING $y doAt $x WITH SUPPORT = 0.1";
        let err = parse_query(src, &o).unwrap_err();
        assert!(matches!(err, QlError::Sparql(_)));
        let span = err.span().unwrap();
        assert_eq!(&src[span.start..span.end], "Nonexistent");
    }

    #[test]
    fn errors() {
        let o = figure1_ontology();
        for (src, what) in [
            (
                "WHERE SATISFYING $x doAt $y WITH SUPPORT = 0.1",
                "no SELECT",
            ),
            (
                "SELECT FACT-SETS WHERE $x instanceOf Park WITH SUPPORT = 0.1",
                "no SATISFYING",
            ),
            ("SELECT FACT-SETS WHERE SATISFYING $x doAt $y", "no WITH"),
            (
                "SELECT FACT-SETS WHERE SATISFYING $x doAt $y WITH SUPPORT 0.1",
                "no equals",
            ),
            (
                "SELECT BOTH WHERE SATISFYING $x doAt $y WITH SUPPORT = 0.1",
                "bad select form",
            ),
            (
                "SELECT FACT-SETS WHERE SATISFYING MORE . $x doAt $y WITH SUPPORT = 0.1",
                "MORE not last",
            ),
            (
                "SELECT FACT-SETS WHERE SATISFYING Park{2} doAt $y WITH SUPPORT = 0.1",
                "mult on constant",
            ),
            (
                "SELECT FACT-SETS WHERE SATISFYING $x doAt $y WITH SUPPORT = 0.1 garbage",
                "trailing tokens",
            ),
            (
                "SELECT FACT-SETS WHERE SATISFYING $x orbits $y WITH SUPPORT = 0.1",
                "unknown relation",
            ),
        ] {
            assert!(parse_query(src, &o).is_err(), "should fail: {what}");
        }
    }

    #[test]
    fn more_with_trailing_dot() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT FACT-SETS WHERE SATISFYING $y doAt $x. MORE. WITH SUPPORT = 0.2",
            &o,
        )
        .unwrap();
        assert!(q.satisfying.more);
    }
}
