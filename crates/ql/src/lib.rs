#![warn(missing_docs)]

//! # oassis-ql
//!
//! OASSIS-QL — the *Ontology ASSISted crowd mining Query Language* of
//! Section 3 of the paper. A query has the shape of Figure 2:
//!
//! ```text
//! SELECT FACT-SETS                      -- or VARIABLES, optionally ALL
//! WHERE
//!   $w subClassOf* Attraction.
//!   $x instanceOf $w.
//!   $x inside NYC.
//!   $x hasLabel "child-friendly".
//!   $y subClassOf* Activity.
//!   $z instanceOf Restaurant.
//!   $z nearBy $x
//! SATISFYING
//!   $y+ doAt $x.
//!   [] eatAt $z.
//!   MORE
//! WITH SUPPORT = 0.4
//! ```
//!
//! * the `WHERE` clause is a SPARQL group graph pattern evaluated over the
//!   ontology (delegated to `oassis-sparql`) — with `UNION` / `OPTIONAL` /
//!   `FILTER`, property paths (`*`, `+`, `?`, `/`, `|`) and the solution
//!   modifiers `DISTINCT` / `ORDER BY` / `LIMIT` / `OFFSET`,
//! * the `SATISFYING` clause is a *meta–fact-set* whose instantiations are
//!   mined from the crowd; variables may carry multiplicities (`+`, `*`,
//!   `?`, `{n}`), relation positions may be variables or `[]`, and the
//!   `MORE` keyword asks for any co-occurring extra facts,
//! * `WITH SUPPORT = θ` sets the significance threshold.
//!
//! This crate provides the AST ([`Query`]), the parser
//! ([`parse_query`]), semantic validation, and pretty-printing.

pub mod ast;
pub mod display;
pub mod error;
pub mod parser;
pub mod validate;

pub use ast::{Multiplicity, QlRel, QlTerm, Query, SatPattern, SatisfyingClause, SelectForm};
pub use error::QlError;
pub use parser::parse_query;
pub use validate::validate_query;
