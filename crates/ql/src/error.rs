//! Error type for OASSIS-QL parsing and validation.

use std::fmt;

use oassis_sparql::{Span, SparqlError};

/// Errors raised while parsing or validating an OASSIS-QL query.
#[derive(Debug, Clone, PartialEq)]
pub enum QlError {
    /// An error in the embedded SPARQL fragment (lexing, WHERE patterns).
    Sparql(SparqlError),
    /// A structural error in the query.
    Parse {
        /// 1-based line.
        line: usize,
        /// Byte range of the offending token in the source.
        span: Span,
        /// Description.
        msg: String,
    },
    /// A semantic validation failure.
    Invalid(String),
}

impl QlError {
    /// The source byte range the error points at, when known.
    pub fn span(&self) -> Option<Span> {
        match self {
            QlError::Sparql(e) => Some(e.span()),
            QlError::Parse { span, .. } => Some(*span),
            QlError::Invalid(_) => None,
        }
    }
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QlError::Sparql(e) => write!(f, "{e}"),
            QlError::Parse { line, span, msg } => {
                write!(f, "query parse error at line {line} ({span}): {msg}")
            }
            QlError::Invalid(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for QlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QlError::Sparql(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparqlError> for QlError {
    fn from(e: SparqlError) -> Self {
        QlError::Sparql(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = QlError::Parse {
            line: 2,
            span: Span { start: 10, end: 15 },
            msg: "missing WHERE".into(),
        };
        assert!(e.to_string().contains("line 2"));
        assert!(e.to_string().contains("bytes 10..15"));
        assert_eq!(e.span(), Some(Span { start: 10, end: 15 }));
        assert!(QlError::Invalid("bad support".into())
            .to_string()
            .contains("bad support"));
        assert_eq!(QlError::Invalid("x".into()).span(), None);
    }
}
