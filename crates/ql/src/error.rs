//! Error type for OASSIS-QL parsing and validation.

use std::fmt;

use oassis_sparql::SparqlError;

/// Errors raised while parsing or validating an OASSIS-QL query.
#[derive(Debug, Clone, PartialEq)]
pub enum QlError {
    /// An error in the embedded SPARQL fragment (lexing, WHERE patterns).
    Sparql(SparqlError),
    /// A structural error in the query.
    Parse {
        /// 1-based line.
        line: usize,
        /// Description.
        msg: String,
    },
    /// A semantic validation failure.
    Invalid(String),
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QlError::Sparql(e) => write!(f, "{e}"),
            QlError::Parse { line, msg } => write!(f, "query parse error at line {line}: {msg}"),
            QlError::Invalid(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for QlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QlError::Sparql(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparqlError> for QlError {
    fn from(e: SparqlError) -> Self {
        QlError::Sparql(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = QlError::Parse {
            line: 2,
            msg: "missing WHERE".into(),
        };
        assert!(e.to_string().contains("line 2"));
        assert!(QlError::Invalid("bad support".into())
            .to_string()
            .contains("bad support"));
    }
}
