//! Pretty-printing of queries back to OASSIS-QL source.

use oassis_sparql::{PatTerm, PropPath, TriplePattern};
use oassis_store::{Ontology, Term};

use crate::ast::{Multiplicity, QlRel, QlTerm, Query, SatPattern, SelectForm};

/// Quote a name in `<...>` if it needs it (spaces, punctuation, or a
/// collision with a language keyword).
fn quote_name(name: &str) -> String {
    let bare = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-');
    if bare && !is_keyword_like(name) {
        name.to_owned()
    } else {
        format!("<{name}>")
    }
}

pub(crate) fn is_keyword_like(name: &str) -> bool {
    matches!(
        name,
        "SELECT"
            | "WHERE"
            | "SATISFYING"
            | "MORE"
            | "WITH"
            | "SUPPORT"
            | "FACT-SETS"
            | "VARIABLES"
            | "ALL"
    )
}

fn mult_suffix(m: Multiplicity) -> String {
    match m {
        Multiplicity::One => String::new(),
        Multiplicity::AtLeastOne => "+".into(),
        Multiplicity::Any => "*".into(),
        Multiplicity::Optional => "?".into(),
        Multiplicity::Exactly(n) => format!("{{{n}}}"),
    }
}

impl Query {
    /// Render the query back to parseable OASSIS-QL source.
    pub fn to_ql_string(&self, ontology: &Ontology) -> String {
        let mut out = String::new();
        out.push_str("SELECT ");
        out.push_str(match self.select {
            SelectForm::FactSets => "FACT-SETS",
            SelectForm::Variables => "VARIABLES",
        });
        if self.all {
            out.push_str(" ALL");
        }
        out.push_str("\nWHERE\n");
        for (i, p) in self.where_patterns.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&self.where_pattern_str(p, ontology));
            if i + 1 < self.where_patterns.len() {
                out.push('.');
            }
            out.push('\n');
        }
        out.push_str("SATISFYING\n");
        let n = self.satisfying.patterns.len();
        for (i, p) in self.satisfying.patterns.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&self.sat_pattern_str(p, ontology));
            if i + 1 < n || self.satisfying.more {
                out.push('.');
            }
            out.push('\n');
        }
        if self.satisfying.more {
            out.push_str("  MORE\n");
        }
        out.push_str(&format!("WITH SUPPORT = {}\n", self.satisfying.support));
        out
    }

    fn where_pattern_str(&self, p: &TriplePattern, ontology: &Ontology) -> String {
        let term = |t: &PatTerm| match t {
            PatTerm::Var(v) => format!("${}", self.vars.name(*v)),
            PatTerm::Const(Term::Element(e)) => quote_name(ontology.vocabulary().element_name(*e)),
            PatTerm::Const(Term::Literal(l)) => format!("{:?}", ontology.literal_str(*l)),
        };
        let path = |p: &PropPath| {
            let name = quote_name(ontology.vocabulary().relation_name(p.relation()));
            match p {
                PropPath::Rel(_) => name,
                PropPath::Star(_) => format!("{name}*"),
                PropPath::Plus(_) => format!("{name}+"),
            }
        };
        format!("{} {} {}", term(&p.subject), path(&p.path), term(&p.object))
    }

    fn sat_pattern_str(&self, p: &SatPattern, ontology: &Ontology) -> String {
        let term = |t: &QlTerm, m: Multiplicity| match t {
            QlTerm::Var(v) if self.vars.is_anon(*v) => "[]".to_owned(),
            QlTerm::Var(v) => format!("${}{}", self.vars.name(*v), mult_suffix(m)),
            QlTerm::Element(e) => quote_name(ontology.vocabulary().element_name(*e)),
        };
        let rel = |r: &QlRel| match r {
            QlRel::Var(v) if self.vars.is_anon(*v) => "[]".to_owned(),
            QlRel::Var(v) => format!("${}", self.vars.name(*v)),
            QlRel::Relation(r) => quote_name(ontology.vocabulary().relation_name(*r)),
        };
        format!(
            "{} {} {}",
            term(&p.subject, p.subject_mult),
            rel(&p.relation),
            term(&p.object, p.object_mult)
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_query;
    use oassis_store::ontology::figure1_ontology;

    #[test]
    fn roundtrip_figure2() {
        let o = figure1_ontology();
        let src = r#"
            SELECT FACT-SETS
            WHERE
              $w subClassOf* Attraction.
              $x instanceOf $w.
              $x inside NYC.
              $x hasLabel "child-friendly".
              $y subClassOf* Activity.
              $z instanceOf Restaurant.
              $z nearBy $x
            SATISFYING
              $y+ doAt $x.
              [] eatAt $z.
              MORE
            WITH SUPPORT = 0.4
        "#;
        let q = parse_query(src, &o).unwrap();
        let printed = q.to_ql_string(&o);
        // The printed text must re-parse to an equivalent query.
        let q2 = parse_query(&printed, &o).unwrap();
        assert_eq!(q.select, q2.select);
        assert_eq!(q.all, q2.all);
        assert_eq!(q.where_patterns.len(), q2.where_patterns.len());
        assert_eq!(q.satisfying.patterns.len(), q2.satisfying.patterns.len());
        assert_eq!(q.satisfying.more, q2.satisfying.more);
        assert_eq!(q.satisfying.support, q2.satisfying.support);
    }

    #[test]
    fn multiword_names_are_angle_quoted() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT FACT-SETS WHERE $y subClassOf* Activity SATISFYING $y doAt <Central Park> WITH SUPPORT = 0.2",
            &o,
        )
        .unwrap();
        let printed = q.to_ql_string(&o);
        assert!(printed.contains("<Central Park>"), "{printed}");
        assert!(parse_query(&printed, &o).is_ok());
    }

    #[test]
    fn multiplicities_render() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT VARIABLES ALL WHERE SATISFYING $y{2} doAt $x. $z? eatAt $x WITH SUPPORT = 0.25",
            &o,
        )
        .unwrap();
        let printed = q.to_ql_string(&o);
        assert!(printed.contains("$y{2}"), "{printed}");
        assert!(printed.contains("$z?"), "{printed}");
        assert!(printed.contains("VARIABLES ALL"), "{printed}");
        assert!(parse_query(&printed, &o).is_ok());
    }
}
