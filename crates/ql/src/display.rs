//! Pretty-printing of queries back to OASSIS-QL source.
//!
//! The printer emits a canonical spelling: top-level WHERE items one per
//! line, nested groups inline, `ASC` left implicit, `OFFSET 0` omitted.
//! `tests/ql_roundtrip.rs` checks that parsing the printed text yields the
//! same AST (parse ∘ display == id) for every grammar construct.

use oassis_sparql::{
    FilterExpr, FilterTerm, GraphPattern, GroupItem, PatTerm, PropPath, SortDir, TriplePattern,
    WhereClause,
};
use oassis_store::{Ontology, Term};

use crate::ast::{Multiplicity, QlRel, QlTerm, Query, SatPattern, SelectForm};

/// Quote a name in `<...>` if it needs it (spaces, punctuation, or a
/// collision with a language keyword).
fn quote_name(name: &str) -> String {
    let bare = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-');
    if bare && !is_keyword_like(name) {
        name.to_owned()
    } else {
        format!("<{name}>")
    }
}

pub(crate) fn is_keyword_like(name: &str) -> bool {
    matches!(
        name,
        "SELECT"
            | "WHERE"
            | "SATISFYING"
            | "MORE"
            | "WITH"
            | "SUPPORT"
            | "FACT-SETS"
            | "VARIABLES"
            | "ALL"
            | "OPTIONAL"
            | "UNION"
            | "FILTER"
            | "DISTINCT"
            | "ORDER"
            | "BY"
            | "ASC"
            | "DESC"
            | "LIMIT"
            | "OFFSET"
            | "IN"
            | "NOT"
    )
}

fn mult_suffix(m: Multiplicity) -> String {
    match m {
        Multiplicity::One => String::new(),
        Multiplicity::AtLeastOne => "+".into(),
        Multiplicity::Any => "*".into(),
        Multiplicity::Optional => "?".into(),
        Multiplicity::Exactly(n) => format!("{{{n}}}"),
    }
}

impl Query {
    /// Render the query back to parseable OASSIS-QL source.
    pub fn to_ql_string(&self, ontology: &Ontology) -> String {
        let mut out = String::new();
        out.push_str("SELECT ");
        out.push_str(match self.select {
            SelectForm::FactSets => "FACT-SETS",
            SelectForm::Variables => "VARIABLES",
        });
        if self.all {
            out.push_str(" ALL");
        }
        out.push_str("\nWHERE\n");
        out.push_str(&self.where_clause_str(&self.where_clause, ontology));
        out.push_str("SATISFYING\n");
        let n = self.satisfying.patterns.len();
        for (i, p) in self.satisfying.patterns.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&self.sat_pattern_str(p, ontology));
            if i + 1 < n || self.satisfying.more {
                out.push('.');
            }
            out.push('\n');
        }
        if self.satisfying.more {
            out.push_str("  MORE\n");
        }
        out.push_str(&format!("WITH SUPPORT = {}\n", self.satisfying.support));
        out
    }

    /// The WHERE section: one top-level group item per indented line,
    /// `.`-separated, then a modifiers line if any modifier is set.
    fn where_clause_str(&self, clause: &WhereClause, ontology: &Ontology) -> String {
        let mut out = String::new();
        let items = &clause.pattern.items;
        for (i, item) in items.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&self.group_item_str(item, ontology));
            if i + 1 < items.len() {
                out.push('.');
            }
            out.push('\n');
        }
        if clause.has_modifiers() {
            let mut mods: Vec<String> = Vec::new();
            if clause.distinct {
                mods.push("DISTINCT".into());
            }
            if !clause.order_by.is_empty() {
                let keys: Vec<String> = clause
                    .order_by
                    .iter()
                    .map(|(v, dir)| match dir {
                        SortDir::Asc => format!("${}", self.vars.name(*v)),
                        SortDir::Desc => format!("${} DESC", self.vars.name(*v)),
                    })
                    .collect();
                mods.push(format!("ORDER BY {}", keys.join(" ")));
            }
            if let Some(l) = clause.limit {
                mods.push(format!("LIMIT {l}"));
            }
            if clause.offset != 0 {
                mods.push(format!("OFFSET {}", clause.offset));
            }
            out.push_str("  ");
            out.push_str(&mods.join(" "));
            out.push('\n');
        }
        out
    }

    fn group_item_str(&self, item: &GroupItem, ontology: &Ontology) -> String {
        match item {
            GroupItem::Triple(t) => self.where_pattern_str(t, ontology),
            GroupItem::Optional(g) => format!("OPTIONAL {{ {} }}", self.group_str(g, ontology)),
            GroupItem::Union(branches) => branches
                .iter()
                .map(|g| format!("{{ {} }}", self.group_str(g, ontology)))
                .collect::<Vec<_>>()
                .join(" UNION "),
            GroupItem::Filter(e) => format!("FILTER({})", self.filter_str(e, ontology)),
        }
    }

    /// A nested group, rendered inline with `.`-separated items.
    fn group_str(&self, g: &GraphPattern, ontology: &Ontology) -> String {
        g.items
            .iter()
            .map(|item| self.group_item_str(item, ontology))
            .collect::<Vec<_>>()
            .join(". ")
    }

    fn filter_str(&self, e: &FilterExpr, ontology: &Ontology) -> String {
        let term = |t: &FilterTerm| match t {
            FilterTerm::Var(v) => format!("${}", self.vars.name(*v)),
            FilterTerm::Const(c) => self.term_str(*c, ontology),
        };
        let list = |ts: &[Term]| {
            ts.iter()
                .map(|t| self.term_str(*t, ontology))
                .collect::<Vec<_>>()
                .join(", ")
        };
        match e {
            FilterExpr::Eq(a, b) => format!("{} = {}", term(a), term(b)),
            FilterExpr::Ne(a, b) => format!("{} != {}", term(a), term(b)),
            FilterExpr::In(v, ts) => format!("${} IN ({})", self.vars.name(*v), list(ts)),
            FilterExpr::NotIn(v, ts) => format!("${} NOT IN ({})", self.vars.name(*v), list(ts)),
        }
    }

    fn term_str(&self, t: Term, ontology: &Ontology) -> String {
        match t {
            Term::Element(e) => quote_name(ontology.vocabulary().element_name(e)),
            Term::Literal(l) => format!("{:?}", ontology.literal_str(l)),
        }
    }

    fn path_str(&self, p: &PropPath, ontology: &Ontology) -> String {
        let name = |r| quote_name(ontology.vocabulary().relation_name(r));
        match p {
            PropPath::Rel(r) => name(*r),
            PropPath::Star(r) => format!("{}*", name(*r)),
            PropPath::Plus(r) => format!("{}+", name(*r)),
            PropPath::Opt(r) => format!("{}?", name(*r)),
            PropPath::Seq(parts) => parts
                .iter()
                .map(|part| self.path_str(part, ontology))
                .collect::<Vec<_>>()
                .join("/"),
            PropPath::Alt(parts) => parts
                .iter()
                .map(|part| self.path_str(part, ontology))
                .collect::<Vec<_>>()
                .join("|"),
        }
    }

    fn where_pattern_str(&self, p: &TriplePattern, ontology: &Ontology) -> String {
        let term = |t: &PatTerm| match t {
            PatTerm::Var(v) => format!("${}", self.vars.name(*v)),
            PatTerm::Const(c) => self.term_str(*c, ontology),
        };
        format!(
            "{} {} {}",
            term(&p.subject),
            self.path_str(&p.path, ontology),
            term(&p.object)
        )
    }

    fn sat_pattern_str(&self, p: &SatPattern, ontology: &Ontology) -> String {
        let term = |t: &QlTerm, m: Multiplicity| match t {
            QlTerm::Var(v) if self.vars.is_anon(*v) => "[]".to_owned(),
            QlTerm::Var(v) => format!("${}{}", self.vars.name(*v), mult_suffix(m)),
            QlTerm::Element(e) => quote_name(ontology.vocabulary().element_name(*e)),
        };
        let rel = |r: &QlRel| match r {
            QlRel::Var(v) if self.vars.is_anon(*v) => "[]".to_owned(),
            QlRel::Var(v) => format!("${}", self.vars.name(*v)),
            QlRel::Relation(r) => quote_name(ontology.vocabulary().relation_name(*r)),
        };
        format!(
            "{} {} {}",
            term(&p.subject, p.subject_mult),
            rel(&p.relation),
            term(&p.object, p.object_mult)
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_query;
    use oassis_store::ontology::figure1_ontology;

    #[test]
    fn roundtrip_figure2() {
        let o = figure1_ontology();
        let src = r#"
            SELECT FACT-SETS
            WHERE
              $w subClassOf* Attraction.
              $x instanceOf $w.
              $x inside NYC.
              $x hasLabel "child-friendly".
              $y subClassOf* Activity.
              $z instanceOf Restaurant.
              $z nearBy $x
            SATISFYING
              $y+ doAt $x.
              [] eatAt $z.
              MORE
            WITH SUPPORT = 0.4
        "#;
        let q = parse_query(src, &o).unwrap();
        let printed = q.to_ql_string(&o);
        // The printed text must re-parse to an equivalent query.
        let q2 = parse_query(&printed, &o).unwrap();
        assert_eq!(q.select, q2.select);
        assert_eq!(q.all, q2.all);
        assert_eq!(q.where_clause, q2.where_clause);
        assert_eq!(q.satisfying.patterns.len(), q2.satisfying.patterns.len());
        assert_eq!(q.satisfying.more, q2.satisfying.more);
        assert_eq!(q.satisfying.support, q2.satisfying.support);
    }

    #[test]
    fn multiword_names_are_angle_quoted() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT FACT-SETS WHERE $y subClassOf* Activity SATISFYING $y doAt <Central Park> WITH SUPPORT = 0.2",
            &o,
        )
        .unwrap();
        let printed = q.to_ql_string(&o);
        assert!(printed.contains("<Central Park>"), "{printed}");
        assert!(parse_query(&printed, &o).is_ok());
    }

    #[test]
    fn multiplicities_render() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT VARIABLES ALL WHERE SATISFYING $y{2} doAt $x. $z? eatAt $x WITH SUPPORT = 0.25",
            &o,
        )
        .unwrap();
        let printed = q.to_ql_string(&o);
        assert!(printed.contains("$y{2}"), "{printed}");
        assert!(printed.contains("$z?"), "{printed}");
        assert!(printed.contains("VARIABLES ALL"), "{printed}");
        assert!(parse_query(&printed, &o).is_ok());
    }

    #[test]
    fn groups_filters_and_modifiers_roundtrip() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT FACT-SETS WHERE \
               { $x instanceOf Park. $x inside NYC } UNION { $x instanceOf Zoo }. \
               OPTIONAL { $x nearBy $z. FILTER($z != <Central Park>) }. \
               FILTER($x NOT IN (<Bronx Zoo>, <Central Park>)) \
               DISTINCT ORDER BY $x DESC $z LIMIT 3 OFFSET 1 \
             SATISFYING $y+ doAt $x WITH SUPPORT = 0.3",
            &o,
        )
        .unwrap();
        let printed = q.to_ql_string(&o);
        let q2 = parse_query(&printed, &o).unwrap();
        assert_eq!(q.where_clause, q2.where_clause, "printed:\n{printed}");
    }

    #[test]
    fn compound_paths_roundtrip() {
        let o = figure1_ontology();
        let q = parse_query(
            "SELECT FACT-SETS WHERE $z nearBy/inside|subClassOf? $c \
             SATISFYING $y doAt $z WITH SUPPORT = 0.2",
            &o,
        )
        .unwrap();
        let printed = q.to_ql_string(&o);
        assert!(printed.contains("nearBy/inside|subClassOf?"), "{printed}");
        let q2 = parse_query(&printed, &o).unwrap();
        assert_eq!(q.where_clause, q2.where_clause);
    }
}
