//! Semantic validation of parsed queries.

use std::collections::HashMap;

use oassis_sparql::Var;

use crate::ast::{Multiplicity, Query};
use crate::error::QlError;

/// Check semantic well-formedness of a parsed query.
///
/// Rules:
/// * the support threshold must lie in `[0, 1]`,
/// * the `SATISFYING` clause must request something (a meta-fact or `MORE`),
/// * a variable may carry at most one non-default multiplicity annotation,
/// * a variable with a multiplicity other than exactly-one must not appear in
///   a relation position (relation variables are single-valued).
pub fn validate_query(q: &Query) -> Result<(), QlError> {
    if !(0.0..=1.0).contains(&q.satisfying.support) || q.satisfying.support.is_nan() {
        return Err(QlError::Invalid(format!(
            "support threshold must be in [0, 1], got {}",
            q.satisfying.support
        )));
    }
    if q.satisfying.patterns.is_empty() && !q.satisfying.more {
        return Err(QlError::Invalid(
            "SATISFYING clause must contain at least one meta-fact or MORE".into(),
        ));
    }

    let mut mults: HashMap<Var, Multiplicity> = HashMap::new();
    for p in &q.satisfying.patterns {
        for (v, m) in [
            (p.subject.as_var(), p.subject_mult),
            (p.object.as_var(), p.object_mult),
        ] {
            let Some(v) = v else { continue };
            if m == Multiplicity::One {
                continue;
            }
            if let Some(prev) = mults.insert(v, m) {
                if prev != m {
                    return Err(QlError::Invalid(format!(
                        "conflicting multiplicities for ${}",
                        q.vars.name(v)
                    )));
                }
            }
        }
    }
    for p in &q.satisfying.patterns {
        if let Some(v) = p.relation.as_var() {
            if let Some(m) = mults.get(&v) {
                if *m != Multiplicity::One {
                    return Err(QlError::Invalid(format!(
                        "relation variable ${} cannot carry a multiplicity",
                        q.vars.name(v)
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::parse_query;
    use oassis_store::ontology::figure1_ontology;

    #[test]
    fn rejects_out_of_range_support() {
        let o = figure1_ontology();
        assert!(parse_query(
            "SELECT FACT-SETS WHERE SATISFYING $x doAt $y WITH SUPPORT = 1.5",
            &o
        )
        .is_err());
    }

    #[test]
    fn accepts_boundary_supports() {
        let o = figure1_ontology();
        for s in ["0", "1", "0.0", "1.0"] {
            let src = format!("SELECT FACT-SETS WHERE SATISFYING $x doAt $y WITH SUPPORT = {s}");
            assert!(parse_query(&src, &o).is_ok(), "support {s}");
        }
    }

    #[test]
    fn rejects_empty_satisfying() {
        let o = figure1_ontology();
        assert!(parse_query("SELECT FACT-SETS WHERE SATISFYING WITH SUPPORT = 0.2", &o).is_err());
    }

    #[test]
    fn more_alone_is_enough() {
        let o = figure1_ontology();
        assert!(parse_query(
            "SELECT FACT-SETS WHERE SATISFYING MORE WITH SUPPORT = 0.2",
            &o
        )
        .is_ok());
    }

    #[test]
    fn rejects_conflicting_multiplicities() {
        let o = figure1_ontology();
        assert!(parse_query(
            "SELECT FACT-SETS WHERE SATISFYING $y+ doAt $x. $y? doAt $x WITH SUPPORT = 0.2",
            &o
        )
        .is_err());
    }

    #[test]
    fn repeated_same_multiplicity_is_fine() {
        let o = figure1_ontology();
        assert!(parse_query(
            "SELECT FACT-SETS WHERE SATISFYING $y+ doAt $x. $y+ eatAt $x WITH SUPPORT = 0.2",
            &o
        )
        .is_ok());
    }

    #[test]
    fn rejects_multiplicity_on_relation_var() {
        let o = figure1_ontology();
        assert!(parse_query(
            "SELECT FACT-SETS WHERE SATISFYING $p+ doAt $x. $y $p $x WITH SUPPORT = 0.2",
            &o
        )
        .is_err());
    }
}
