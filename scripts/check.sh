#!/usr/bin/env bash
# Repo-wide gate: build, tests, lints. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> scripts/stress.sh"
./scripts/stress.sh

echo "==> scale benchmark (smoke): indexed vs un-indexed must agree, speedup >= 1"
OASSIS_SCALE_SMOKE=1 cargo run --release -q -p oassis-bench --bin figures -- scale

echo "==> simulation smoke: 64-seed fault sweep, all oracles (see docs/testing.md)"
cargo run --release -q -p oassis-simtest --bin sim -- sweep 64

echo "==> service smoke: 2 overlapping queries share the crowd, answers match serial"
OASSIS_SERVICE_SMOKE=1 cargo run --release -q -p oassis-bench --bin figures -- service

echo "==> service simulation: 64-seed sweep (replay, differential, starvation, isolation)"
cargo run --release -q -p oassis-simtest --bin sim -- service-sweep 64

echo "==> durability smoke: WAL recovery invariants at small log sizes"
OASSIS_DURABILITY_SMOKE=1 cargo run --release -q -p oassis-bench --bin figures -- durability

echo "==> durability simulation: 64-seed crash-restart sweep (kill at any WAL index, recover, compare)"
cargo run --release -q -p oassis-simtest --bin sim -- durability-sweep 64

echo "==> wave simulation: 64-seed sweep (waved replay, wave-size equivalence, disjoint identity)"
cargo run --release -q -p oassis-simtest --bin sim -- wave-sweep 64

echo "==> crowd-scale smoke: sharded + waved runs must match the 1-shard/1-wave reference"
OASSIS_CROWDSCALE_SMOKE=1 cargo run --release -q -p oassis-bench --bin figures -- crowd-scale

echo "==> net smoke: served TCP-loopback sessions must match the in-process run"
cargo test -q --release --test net
OASSIS_NET_SMOKE=1 cargo run --release -q -p oassis-bench --bin figures -- net

echo "==> net simulation: 64-seed protocol sweep (transparency, replay, kill at every protocol event, frame faults)"
cargo run --release -q -p oassis-simtest --bin sim -- net-sweep 64

echo "==> planner smoke: FILTER pushdown must shrink seeds + questions, answers identical planner on/off"
OASSIS_PLANNER_SMOKE=1 cargo run --release -q -p oassis-bench --bin figures -- planner

echo "==> query-language properties: display/parse roundtrip + 3-way evaluator oracle"
cargo test -q --release --test ql_roundtrip --test planner_oracle

echo "==> all checks passed"
