#!/usr/bin/env bash
# Concurrency stress: repeat the session-runtime test suite with varying
# worker counts so scheduling-dependent bugs (races, lost answers,
# determinism violations) get many chances to surface. Tier-1 via
# check.sh; tune with STRESS_ITERS (default 3).
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS="${STRESS_ITERS:-3}"
WORKERS=(1 2 4 8 16)

for ((i = 1; i <= ITERS; i++)); do
  w="${WORKERS[$(((i - 1) % ${#WORKERS[@]}))]}"
  echo "==> stress iteration $i/$ITERS (OASSIS_STRESS_WORKERS=$w)"
  OASSIS_STRESS_WORKERS="$w" cargo test -q --test runtime_concurrency
done

echo "==> stress passed ($ITERS iterations)"
