#!/usr/bin/env bash
# One line per checked-in BENCH_*.json: the headline number(s) of each
# experiment, for quick before/after diffing in PRs. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

shopt -s nullglob
files=(BENCH_*.json)
if [ ${#files[@]} -eq 0 ]; then
    echo "no BENCH_*.json checked in" >&2
    exit 1
fi

for f in "${files[@]}"; do
    exp=$(jq -r '.experiment // "?"' "$f")
    case "$exp" in
    scale)
        jq -r '"\(input_filename): \(.rows | length) domains, speedup \(.rows | map(.speedup) | min)-\(.rows | map(.speedup) | max)x, answers_match \(.rows | all(.answers_match))"' "$f"
        ;;
    service)
        jq -r '"\(input_filename): \(.rows | length) domains, questions saved \(.rows | map(.saved_pct) | min)-\(.rows | map(.saved_pct) | max)%, answers_match \(.rows | all(.answers_match))"' "$f"
        ;;
    durability)
        jq -r '"\(input_filename): \(.rows | length) rows, up to \(.rows | map(.records) | max) records, worst recover \(.rows | map(.recover_secs) | max)s"' "$f"
        ;;
    simtest)
        jq -r '"\(input_filename): \(.passed)/\(.seeds) seeds passed (\(.seeds_per_sec)/s)"' "$f"
        ;;
    crowdscale)
        jq -r '"\(input_filename): \(.rows | length) rows, up to \(.rows | map(.members) | max) members, shard gain \(.shard_gain)x (1->\(.rows | map(.shards) | max) shards), answers_match \(.rows | all(.answers_match))"' "$f"
        ;;
    net)
        jq -r '"\(input_filename): \(.rows | length) rows, overhead \(.rows | map(.overhead_pct) | min)-\(.rows | map(.overhead_pct) | max)%, hello rtt up to \(.rows | map(.hello_rtt_usecs) | max)us, answers_match \(.rows | all(.answers_match))"' "$f"
        ;;
    planner)
        jq -r '"\(input_filename): \(.rows | length) domains, seeds cut \(.rows | map(.base_seeds - .filtered_seeds) | min)-\(.rows | map(.base_seeds - .filtered_seeds) | max), questions cut \(.rows | map(.base_questions - .filtered_questions) | min)-\(.rows | map(.base_questions - .filtered_questions) | max), eval speedup \(.rows | map(.eval_speedup) | min)-\(.rows | map(.eval_speedup) | max)x, answers_match \(.rows | all(.answers_match))"' "$f"
        ;;
    *)
        echo "$f: experiment=$exp ($(jq -r '.rows | length // 0' "$f") rows)"
        ;;
    esac
done
